//! 3CNF formulas with a brute-force SAT oracle.
//!
//! Used to validate the hardness reductions of Theorems 4.6 and 5.2: the
//! reductions claim "implication ⇔ unsatisfiable", and the oracle supplies
//! ground truth for small formulas.

use rand::Rng;
use std::fmt;

/// A literal: variable index (0-based) and polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Literal {
    pub var: usize,
    pub positive: bool,
}

impl Literal {
    pub fn pos(var: usize) -> Self {
        Literal { var, positive: true }
    }

    pub fn neg(var: usize) -> Self {
        Literal { var, positive: false }
    }

    pub fn satisfied_by(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", if self.positive { "" } else { "¬" }, self.var + 1)
    }
}

/// A clause of exactly three literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clause(pub [Literal; 3]);

impl Clause {
    pub fn satisfied_by(self, assignment: &[bool]) -> bool {
        self.0.iter().any(|l| l.satisfied_by(assignment))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} ∨ {} ∨ {})", self.0[0], self.0[1], self.0[2])
    }
}

/// A 3CNF formula over `vars` variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Formula {
    pub vars: usize,
    pub clauses: Vec<Clause>,
}

impl Formula {
    pub fn new(vars: usize, clauses: Vec<Clause>) -> Self {
        for c in &clauses {
            for l in c.0 {
                assert!(l.var < vars, "literal variable out of range");
            }
        }
        Formula { vars, clauses }
    }

    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.vars);
        self.clauses.iter().all(|c| c.satisfied_by(assignment))
    }

    /// Brute-force satisfiability; exact for small `vars`.
    pub fn satisfiable(&self) -> bool {
        self.first_model().is_some()
    }

    /// The lexicographically first satisfying assignment, if any.
    pub fn first_model(&self) -> Option<Vec<bool>> {
        assert!(self.vars <= 24, "brute-force oracle limited to 24 variables");
        (0..1u32 << self.vars)
            .map(|bits| (0..self.vars).map(|i| bits & (1 << i) != 0).collect::<Vec<bool>>())
            .find(|a| self.satisfied_by(a))
    }

    /// All satisfying assignments (small formulas only).
    pub fn all_models(&self) -> Vec<Vec<bool>> {
        assert!(self.vars <= 20, "model enumeration limited to 20 variables");
        (0..1u32 << self.vars)
            .map(|bits| (0..self.vars).map(|i| bits & (1 << i) != 0).collect::<Vec<bool>>())
            .filter(|a| self.satisfied_by(a))
            .collect()
    }

    /// A uniformly random formula.
    pub fn random(rng: &mut impl Rng, vars: usize, clauses: usize) -> Formula {
        assert!(vars >= 1);
        let clauses = (0..clauses)
            .map(|_| {
                Clause([0; 3].map(|_| Literal {
                    var: rng.random_range(0..vars),
                    positive: rng.random_bool(0.5),
                }))
            })
            .collect();
        Formula::new(vars, clauses)
    }

    /// A canonical unsatisfiable formula over `vars ≥ 2` variables: all
    /// eight sign patterns of (x1, x2) padded with x1 in the third slot.
    pub fn unsatisfiable(vars: usize) -> Formula {
        assert!(vars >= 2);
        let mut clauses = Vec::new();
        for p1 in [true, false] {
            for p2 in [true, false] {
                for p3 in [true, false] {
                    clauses.push(Clause([
                        Literal { var: 0, positive: p1 },
                        Literal { var: 1, positive: p2 },
                        Literal { var: 0, positive: p3 },
                    ]));
                }
            }
        }
        Formula::new(vars, clauses)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.clauses.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join(" ∧ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfiability_basics() {
        let f = Formula::new(2, vec![Clause([Literal::pos(0), Literal::neg(1), Literal::pos(0)])]);
        assert!(f.satisfiable());
        assert!(f.satisfied_by(&[true, true]));
        assert!(!f.satisfied_by(&[false, true]));
    }

    #[test]
    fn canonical_unsat() {
        for vars in 2..5 {
            let f = Formula::unsatisfiable(vars);
            assert!(!f.satisfiable(), "{f} must be unsatisfiable");
        }
    }

    #[test]
    fn random_formulas_well_formed() {
        let mut rng = rand::rng();
        for _ in 0..20 {
            let f = Formula::random(&mut rng, 4, 6);
            assert_eq!(f.clauses.len(), 6);
            // Oracle runs without panicking.
            let _ = f.satisfiable();
        }
    }

    #[test]
    fn all_models_consistent_with_satisfiable() {
        let mut rng = rand::rng();
        for _ in 0..10 {
            let f = Formula::random(&mut rng, 3, 4);
            assert_eq!(f.satisfiable(), !f.all_models().is_empty());
        }
    }
}
