//! The coNP-hardness reduction gadgets of Theorems 4.6 and 5.2 (Fig. 6),
//! implemented faithfully and *validated* against the brute-force SAT
//! oracle: each gadget comes with an **assignment-guided instance builder**
//! realizing the intended violating instance for a truth assignment `α`,
//! and the key lemma — *the built instance is valid for `C` iff `α ⊨ f`* —
//! is checked by tests and exercised by the hardness benchmarks.

use crate::cnf::Formula;
use xuc_core::Constraint;
use xuc_xpath::Pattern;
use xuc_xtree::{DataTree, NodeId};

fn q(src: &str) -> Pattern {
    xuc_xpath::parse(src).unwrap_or_else(|e| panic!("gadget query {src:?}: {e}"))
}

fn xvar(i: usize) -> String {
    format!("x{}", i + 1)
}

// ---------------------------------------------------------------------
// Theorem 4.6 — general implication, XP{/,[],//} is coNP-hard.
// ---------------------------------------------------------------------

/// The Theorem 4.6 gadget: a constraint set `C` and goal `c` over
/// `XP{/,[],//}` such that `C ⊨ c` iff the formula is unsatisfiable.
pub struct Thm46Gadget {
    pub formula: Formula,
    pub set: Vec<Constraint>,
    pub goal: Constraint,
    /// The canonical before-instance `I`: the full path with every
    /// assignment pair in the second half.
    pub canonical_i: DataTree,
    /// Ids of the `+`/`-` nodes per variable (second-half positions in `I`).
    plus_ids: Vec<NodeId>,
    minus_ids: Vec<NodeId>,
    /// All other chain node ids in order, for rebuilding `J(α)`.
    s_id: NodeId,
    first_half: Vec<NodeId>,
    m_id: NodeId,
    second_half: Vec<NodeId>,
    e_id: NodeId,
}

impl Thm46Gadget {
    pub fn new(formula: Formula) -> Thm46Gadget {
        let n = formula.vars;
        assert!(n >= 1);

        // --- the goal: c = (/s/x1//x2//…//xn//m//x1//+//-//…//xn//+//-//e, ↑)
        let mut goal_src = String::from("/s/x1");
        for i in 1..n {
            goal_src.push_str(&format!("//{}", xvar(i)));
        }
        goal_src.push_str("//m");
        for i in 0..n {
            goal_src.push_str(&format!("//{}//+//-", xvar(i)));
        }
        goal_src.push_str("//e");
        let goal = Constraint::no_remove(q(&goal_src));

        // The tail `p` after s, used inside the predicate-guarded ranges.
        let mut tail = String::from("/x1");
        for i in 1..n {
            tail.push_str(&format!("//{}", xvar(i)));
        }
        tail.push_str("//m");
        for i in 0..n {
            tail.push_str(&format!("//{}//+//-", xvar(i)));
        }
        tail.push_str("//e");

        let mut set = Vec::new();
        let mut guard = |pred: &str| {
            set.push(Constraint::no_remove(q(&format!("/s[{pred}]{tail}"))));
        };

        // Group 1: the root-to-e path of I must be clean (↑ with predicates).
        guard("//m//m");
        for i in 0..n {
            guard(&format!("//{x}//{x}//m", x = xvar(i)));
            guard(&format!("//m//{x}//{x}", x = xvar(i)));
        }
        for i in 0..n {
            for k in 0..i {
                // Out-of-order variables in either half.
                guard(&format!("//{}//{}//m", xvar(i), xvar(k)));
                guard(&format!("//m//{}//{}", xvar(i), xvar(k)));
            }
        }
        guard("//+//m");
        guard("//-//m");
        for i in 0..n.saturating_sub(1) {
            guard(&format!("//m//{}//+//+//{}", xvar(i), xvar(i + 1)));
            guard(&format!("//m//{}//-//-//{}", xvar(i), xvar(i + 1)));
        }

        // e stays on the general path.
        let mut general = String::from("/s//x1");
        for i in 1..n {
            general.push_str(&format!("//{}", xvar(i)));
        }
        general.push_str("//m");
        for i in 0..n {
            general.push_str(&format!("//{}", xvar(i)));
        }
        general.push_str("//e");
        set.push(Constraint::no_remove(q(&general)));

        // No new m's or duplicated variables may appear (↓).
        set.push(Constraint::no_insert(q("/s//m//m//e")));
        for i in 0..n {
            set.push(Constraint::no_insert(q(&format!("/s//{x}//{x}//m//e", x = xvar(i)))));
            set.push(Constraint::no_insert(q(&format!("/s//m//{x}//{x}//e", x = xvar(i)))));
        }

        // All n +'s and n -'s remain on the path to e (↑).
        let plus_run: String = "//+".repeat(n);
        let minus_run: String = "//-".repeat(n);
        set.push(Constraint::no_remove(q(&format!("/s{plus_run}//e"))));
        set.push(Constraint::no_remove(q(&format!("/s{minus_run}//e"))));

        // First-half intervals hold at most one sign (↓).
        for i in 0..n.saturating_sub(1) {
            for signs in ["+//+", "-//-", "+//-", "-//+"] {
                set.push(Constraint::no_insert(q(&format!(
                    "/s//{}//{}//{}//m//e",
                    xvar(i),
                    signs,
                    xvar(i + 1)
                ))));
            }
        }
        // Second-half intervals: no doubled signs, no - before + (↓).
        for i in 0..n.saturating_sub(1) {
            for signs in ["+//+", "-//-", "-//+"] {
                set.push(Constraint::no_insert(q(&format!(
                    "/s//m//{}//{}//{}//e",
                    xvar(i),
                    signs,
                    xvar(i + 1)
                ))));
            }
        }
        // Any first-half sign forces a perfect split (↓).
        for lead in ["+", "-"] {
            for j in 0..n.saturating_sub(1) {
                set.push(Constraint::no_insert(q(&format!(
                    "/s//{lead}//m//{}//+//-//{}//e",
                    xvar(j),
                    xvar(j + 1)
                ))));
            }
        }
        // One constraint pair per clause: at least one literal's sign must
        // land in the first half (↓; the pattern detects "all three
        // falsified in the second half").
        for clause in &formula.clauses {
            let mut lits: Vec<_> = clause.0.to_vec();
            lits.sort_by_key(|l| (l.var, l.positive));
            lits.dedup();
            // A clause holding a variable in both polarities is a tautology
            // and imposes no restriction.
            let tautology = lits.windows(2).any(|w| w[0].var == w[1].var);
            if tautology {
                continue;
            }
            for lead in ["+", "-"] {
                let mut src = format!("/s//{lead}//m");
                for (k, l) in lits.iter().enumerate() {
                    let sign = if l.positive { "+" } else { "-" };
                    src.push_str(&format!("//{}//{}", xvar(l.var), sign));
                    // Close the interval so the sign is pinned right after
                    // x_{var}; the boundary coincides with the next literal's
                    // variable when they are consecutive.
                    let boundary = l.var + 1;
                    if boundary < n && lits.get(k + 1).map(|nl| nl.var) != Some(boundary) {
                        src.push_str(&format!("//{}", xvar(boundary)));
                    }
                }
                src.push_str("//e");
                set.push(Constraint::no_insert(q(&src)));
            }
        }

        // --- the canonical I: the full chain.
        let mut canonical_i = DataTree::new("doc");
        let mut cursor = canonical_i.root_id();
        let grow = |tree: &mut DataTree, cursor: &mut NodeId, label: &str| -> NodeId {
            let id = tree.add(*cursor, label).expect("fresh");
            *cursor = id;
            id
        };
        let s_id = grow(&mut canonical_i, &mut cursor, "s");
        let mut first_half = Vec::new();
        for i in 0..n {
            first_half.push(grow(&mut canonical_i, &mut cursor, &xvar(i)));
        }
        let m_id = grow(&mut canonical_i, &mut cursor, "m");
        let mut second_half = Vec::new();
        let mut plus_ids = Vec::new();
        let mut minus_ids = Vec::new();
        for i in 0..n {
            second_half.push(grow(&mut canonical_i, &mut cursor, &xvar(i)));
            plus_ids.push(grow(&mut canonical_i, &mut cursor, "+"));
            minus_ids.push(grow(&mut canonical_i, &mut cursor, "-"));
        }
        let e_id = grow(&mut canonical_i, &mut cursor, "e");

        Thm46Gadget {
            formula,
            set,
            goal,
            canonical_i,
            plus_ids,
            minus_ids,
            s_id,
            first_half,
            m_id,
            second_half,
            e_id,
        }
    }

    /// The after-instance `J(α)` for a truth assignment: each variable's
    /// chosen sign moves into its first-half interval; the opposite sign
    /// stays in the second half. Node ids are preserved.
    pub fn assignment_instance(&self, alpha: &[bool]) -> DataTree {
        assert_eq!(alpha.len(), self.formula.vars);
        let mut j = DataTree::new("doc");
        let mut cursor = j.root_id();
        let src = &self.canonical_i;
        let push = |tree: &mut DataTree, cursor: &mut NodeId, id: NodeId| {
            let label = src.label(id).expect("live");
            *cursor = tree.add_with_id(*cursor, id, label).expect("fresh");
        };
        push(&mut j, &mut cursor, self.s_id);
        for (i, &fh) in self.first_half.iter().enumerate() {
            push(&mut j, &mut cursor, fh);
            let chosen = if alpha[i] { self.plus_ids[i] } else { self.minus_ids[i] };
            push(&mut j, &mut cursor, chosen);
        }
        push(&mut j, &mut cursor, self.m_id);
        for (i, &sh) in self.second_half.iter().enumerate() {
            push(&mut j, &mut cursor, sh);
            let kept = if alpha[i] { self.minus_ids[i] } else { self.plus_ids[i] };
            push(&mut j, &mut cursor, kept);
        }
        push(&mut j, &mut cursor, self.e_id);
        j
    }

    /// The key lemma of the reduction, checked semantically: the pair
    /// `(I, J(α))` is valid for `C` iff `α ⊨ f`, and every valid `J(α)`
    /// violates `c`.
    pub fn assignment_refutes(&self, alpha: &[bool]) -> bool {
        let j = self.assignment_instance(alpha);
        xuc_core::constraint::all_satisfied(&self.set, &self.canonical_i, &j)
            && !self.goal.satisfied_by(&self.canonical_i, &j)
    }

    /// Brute-force gadget decision: `C ⊨ c` restricted to assignment-shaped
    /// counterexamples — by the reduction argument this equals full
    /// implication, i.e. it holds iff the formula is unsatisfiable.
    pub fn implied_by_assignment_sweep(&self) -> bool {
        let n = self.formula.vars;
        (0..1u32 << n).all(|bits| {
            let alpha: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            !self.assignment_refutes(&alpha)
        })
    }
}

// ---------------------------------------------------------------------
// Theorem 5.2 / Figure 6 — instance-based implication, XP{/,[]} is
// coNP-hard with mixed update types.
// ---------------------------------------------------------------------

/// The Theorem 5.2 gadget: a current instance `J` (Fig. 6), constraints
/// `C` and goal `c` in `XP{/,[]}` such that `C ⊨_J c` iff the formula is
/// unsatisfiable.
pub struct Thm52Gadget {
    pub formula: Formula,
    pub j: DataTree,
    pub set: Vec<Constraint>,
    pub goal: Constraint,
    /// Per-variable `(+ id, - id)` under `a1`'s v-nodes in `J`.
    sign_ids: Vec<(NodeId, NodeId)>,
    /// `a2`'s v-node ids per variable (targets of the sign moves).
    a2_v_ids: Vec<NodeId>,
}

impl Thm52Gadget {
    pub fn new(formula: Formula) -> Thm52Gadget {
        let n = formula.vars;
        assert!(n >= 1);

        // --- J: Fig. 6.
        let mut j = DataTree::new("doc");
        let root = j.root_id();
        let a1 = j.add(root, "a").expect("fresh");
        j.add(a1, "one").expect("fresh");
        let a2 = j.add(root, "a").expect("fresh");
        j.add(a2, "two").expect("fresh");
        let mut sign_ids = Vec::new();
        let mut a2_v_ids = Vec::new();
        for i in 0..n {
            let v1 = j.add(a1, "v").expect("fresh");
            j.add(v1, xvar(i).as_str()).expect("fresh");
            let plus = j.add(v1, "+").expect("fresh");
            let minus = j.add(v1, "-").expect("fresh");
            sign_ids.push((plus, minus));
            let v2 = j.add(a2, "v").expect("fresh");
            j.add(v2, xvar(i).as_str()).expect("fresh");
            a2_v_ids.push(v2);
        }

        // --- C.
        let mut set = Vec::new();
        let mut immutable = |src: &str| {
            set.extend(Constraint::immutable(q(src)));
        };
        immutable("/a");
        immutable("/a[/one]");
        immutable("/a[/two]");
        immutable("/a/v");
        for i in 0..n {
            immutable(&format!("/a[/one]/v[/{}]", xvar(i)));
            immutable(&format!("/a[/two]/v[/{}]", xvar(i)));
        }
        let all_vars: String = (0..n).map(|i| format!("[/v[/{}]]", xvar(i))).collect();
        immutable(&format!("/a[/one]{all_vars}"));
        immutable(&format!("/a[/two]{all_vars}"));
        for i in 0..n {
            immutable(&format!("/a/v[/{}]/+", xvar(i)));
            immutable(&format!("/a/v[/{}]/-", xvar(i)));
        }
        for i in 0..n {
            set.push(Constraint::no_remove(q(&format!("/a[/two][/v[/{}][/+][/-]]", xvar(i)))));
        }
        for clause in &formula.clauses {
            let mut preds = String::new();
            let mut lits: Vec<_> = clause.0.to_vec();
            lits.sort_by_key(|l| (l.var, l.positive));
            lits.dedup();
            for l in lits {
                let sign = if l.positive { "+" } else { "-" };
                preds.push_str(&format!("[/v[/{}][/{}]]", xvar(l.var), sign));
            }
            set.push(Constraint::no_remove(q(&format!("/a[/two]{preds}"))));
        }

        let goal = Constraint::no_insert(q("/a[/one][/v[/+][/-]]"));

        Thm52Gadget { formula, j, set, goal, sign_ids, a2_v_ids }
    }

    /// The previous instance `I(α)`: `J` with, per variable, the sign
    /// *opposite* to `α` moved under `a2`'s v-node — so `a1`'s v-nodes each
    /// hold exactly the chosen assignment.
    pub fn assignment_instance(&self, alpha: &[bool]) -> DataTree {
        assert_eq!(alpha.len(), self.formula.vars);
        let mut i_tree = self.j.clone();
        for (idx, &(plus, minus)) in self.sign_ids.iter().enumerate() {
            let mover = if alpha[idx] { minus } else { plus };
            i_tree.move_node(mover, self.a2_v_ids[idx]).expect("move sign");
        }
        i_tree
    }

    /// The key lemma: `(I(α), J)` is valid for `C` iff `α ⊨ f`, and every
    /// valid `I(α)` violates `c`.
    pub fn assignment_refutes(&self, alpha: &[bool]) -> bool {
        let i = self.assignment_instance(alpha);
        xuc_core::constraint::all_satisfied(&self.set, &i, &self.j)
            && !self.goal.satisfied_by(&i, &self.j)
    }

    /// Brute-force gadget decision over assignment-shaped instances:
    /// equals `C ⊨_J c` by the reduction, i.e. holds iff unsatisfiable.
    pub fn implied_by_assignment_sweep(&self) -> bool {
        let n = self.formula.vars;
        (0..1u32 << n).all(|bits| {
            let alpha: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            !self.assignment_refutes(&alpha)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Literal};

    fn small_formulas() -> Vec<Formula> {
        let mut out = vec![
            Formula::new(2, vec![Clause([Literal::pos(0), Literal::pos(1), Literal::pos(0)])]),
            Formula::new(
                2,
                vec![
                    Clause([Literal::pos(0), Literal::pos(0), Literal::pos(0)]),
                    Clause([Literal::neg(0), Literal::neg(0), Literal::neg(0)]),
                ],
            ),
            Formula::unsatisfiable(2),
            Formula::new(
                3,
                vec![
                    Clause([Literal::pos(0), Literal::neg(1), Literal::pos(2)]),
                    Clause([Literal::neg(0), Literal::pos(1), Literal::neg(2)]),
                ],
            ),
        ];
        let mut rng = rand::rng();
        for _ in 0..4 {
            out.push(Formula::random(&mut rng, 3, 3));
        }
        out
    }

    #[test]
    fn thm52_assignment_lemma() {
        for f in small_formulas() {
            let g = Thm52Gadget::new(f.clone());
            for alpha in 0..1u32 << f.vars {
                let a: Vec<bool> = (0..f.vars).map(|i| alpha & (1 << i) != 0).collect();
                assert_eq!(
                    g.assignment_refutes(&a),
                    f.satisfied_by(&a),
                    "Thm 5.2 lemma failed for {f} under {a:?}"
                );
            }
        }
    }

    #[test]
    fn thm52_reduction_matches_sat_oracle() {
        for f in small_formulas() {
            let sat = f.satisfiable();
            let g = Thm52Gadget::new(f.clone());
            assert_eq!(
                g.implied_by_assignment_sweep(),
                !sat,
                "Thm 5.2 reduction disagreed with SAT oracle on {f}"
            );
        }
    }

    #[test]
    fn thm46_assignment_lemma() {
        for f in small_formulas() {
            let g = Thm46Gadget::new(f.clone());
            for alpha in 0..1u32 << f.vars {
                let a: Vec<bool> = (0..f.vars).map(|i| alpha & (1 << i) != 0).collect();
                assert_eq!(
                    g.assignment_refutes(&a),
                    f.satisfied_by(&a),
                    "Thm 4.6 lemma failed for {f} under {a:?}"
                );
            }
        }
    }

    #[test]
    fn thm46_reduction_matches_sat_oracle() {
        for f in small_formulas() {
            let sat = f.satisfiable();
            let g = Thm46Gadget::new(f.clone());
            assert_eq!(g.implied_by_assignment_sweep(), !sat);
        }
    }

    #[test]
    fn gadget_sizes_polynomial() {
        let f = Formula::random(&mut rand::rng(), 4, 5);
        let g46 = Thm46Gadget::new(f.clone());
        assert!(g46.set.len() <= 20 + 12 * f.vars + 2 * f.vars * f.vars + 2 * f.clauses.len());
        let g52 = Thm52Gadget::new(f.clone());
        assert!(g52.j.len() <= 6 + 6 * f.vars);
        assert!(g52.set.len() <= 16 + 10 * f.vars + f.clauses.len());
    }
}
