//! Data-tree workloads: the paper's running documents and random trees.

use rand::Rng;
use xuc_core::Constraint;
use xuc_xtree::{DataTree, Label, NodeId};

/// The Figure 2 pair of instances `(I, J)` of Example 2.1 — `J` deletes
/// visit `n7` and adds a fresh patient.
pub fn fig2_pair() -> (DataTree, DataTree) {
    let i =
        xuc_xtree::parse_term("hospital#1(patient#2(visit#6,visit#7),patient#3(clinicalTrial#8))")
            .expect("static term");
    let j = xuc_xtree::parse_term(
        "hospital#1(patient#2(visit#6),patient#3(clinicalTrial#8),patient#4)",
    )
    .expect("static term");
    (i, j)
}

/// Example 2.1's constraints `{c1, c2, c3}`.
pub fn example_2_1_constraints() -> Vec<Constraint> {
    let mut out = vec![xuc_core::parse_constraint("(/patient[/visit], ↓)").expect("static")];
    out.extend(Constraint::immutable(
        xuc_xpath::parse("/patient[/clinicalTrial]").expect("static"),
    ));
    out.push(xuc_core::parse_constraint("(/patient/visit, ↑)").expect("static"));
    out
}

/// Example 4.1's mixed-type linear constraint set and implied goal.
pub fn example_4_1() -> (Vec<Constraint>, Constraint) {
    let set =
        ["(//a//c, ↑)", "(//b//c, ↑)", "(//a//b//c, ↓)", "(//a//b//a//c, ↑)", "(//b//a//b//c, ↑)"]
            .iter()
            .map(|s| xuc_core::parse_constraint(s).expect("static"))
            .collect();
    let goal = xuc_core::parse_constraint("(//b//a//c, ↑)").expect("static");
    (set, goal)
}

/// A synthetic hospital document: `patients` patients, each with up to
/// `max_visits` visits and a clinical-trial marker with probability 0.5.
pub fn hospital(rng: &mut impl Rng, patients: usize, max_visits: usize) -> DataTree {
    let mut t = DataTree::new("hospital");
    let root = t.root_id();
    for _ in 0..patients {
        let p = t.add(root, "patient").expect("fresh");
        for _ in 0..rng.random_range(0..=max_visits) {
            let v = t.add(p, "visit").expect("fresh");
            if rng.random_bool(0.3) {
                t.add(v, "report").expect("fresh");
            }
        }
        if rng.random_bool(0.5) {
            t.add(p, "clinicalTrial").expect("fresh");
        }
        if rng.random_bool(0.2) {
            t.add(p, "phone").expect("fresh");
        }
    }
    t
}

/// A uniformly random tree with `n` non-root nodes over the label pool.
pub fn random_tree(rng: &mut impl Rng, labels: &[&str], n: usize) -> DataTree {
    let mut tree = DataTree::new("root");
    let mut ids: Vec<NodeId> = vec![tree.root_id()];
    for _ in 0..n {
        let parent = ids[rng.random_range(0..ids.len())];
        let label = Label::new(labels[rng.random_range(0..labels.len())]);
        ids.push(tree.add(parent, label).expect("fresh"));
    }
    tree
}

/// A random "bushy" tree of bounded depth (more realistic XML shape).
pub fn random_document(
    rng: &mut impl Rng,
    labels: &[&str],
    n: usize,
    max_depth: usize,
) -> DataTree {
    let mut tree = DataTree::new("root");
    let mut frontier: Vec<(NodeId, usize)> = vec![(tree.root_id(), 0)];
    for _ in 0..n {
        let idx = rng.random_range(0..frontier.len());
        let (parent, depth) = frontier[idx];
        let label = Label::new(labels[rng.random_range(0..labels.len())]);
        let id = tree.add(parent, label).expect("fresh");
        if depth + 1 < max_depth {
            frontier.push((id, depth + 1));
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::constraint;

    #[test]
    fn fig2_matches_example_2_1() {
        let (i, j) = fig2_pair();
        let cs = example_2_1_constraints();
        // c1 and c2 hold; c3 (the last) is violated.
        assert!(cs[0].satisfied_by(&i, &j));
        assert!(cs[1].satisfied_by(&i, &j));
        assert!(cs[2].satisfied_by(&i, &j));
        assert!(!cs[3].satisfied_by(&i, &j));
        assert_eq!(constraint::violations(&cs, &i, &j).len(), 1);
    }

    #[test]
    fn example_4_1_wellformed() {
        let (set, goal) = example_4_1();
        assert_eq!(set.len(), 5);
        assert!(set.iter().all(|c| c.range.is_linear()));
        assert!(goal.range.is_linear());
    }

    #[test]
    fn hospital_sizes() {
        let mut rng = rand::rng();
        let t = hospital(&mut rng, 50, 4);
        assert!(t.len() > 50);
        let q = xuc_xpath::parse("/patient").unwrap();
        assert_eq!(xuc_xpath::eval::eval(&q, &t).len(), 50);
    }

    #[test]
    fn random_trees_sized() {
        let mut rng = rand::rng();
        let t = random_tree(&mut rng, &["a", "b"], 30);
        assert_eq!(t.len(), 31);
        let d = random_document(&mut rng, &["a", "b", "c"], 40, 4);
        assert_eq!(d.len(), 41);
        assert!(d.height() <= 4);
    }
}
