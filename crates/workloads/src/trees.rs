//! Data-tree workloads: the paper's running documents and random trees.

use rand::Rng;
use xuc_core::Constraint;
use xuc_xtree::{DataTree, Label, NodeId};

/// The Figure 2 pair of instances `(I, J)` of Example 2.1 — `J` deletes
/// visit `n7` and adds a fresh patient.
pub fn fig2_pair() -> (DataTree, DataTree) {
    let i =
        xuc_xtree::parse_term("hospital#1(patient#2(visit#6,visit#7),patient#3(clinicalTrial#8))")
            .expect("static term");
    let j = xuc_xtree::parse_term(
        "hospital#1(patient#2(visit#6),patient#3(clinicalTrial#8),patient#4)",
    )
    .expect("static term");
    (i, j)
}

/// Example 2.1's constraints `{c1, c2, c3}`.
pub fn example_2_1_constraints() -> Vec<Constraint> {
    let mut out = vec![xuc_core::parse_constraint("(/patient[/visit], ↓)").expect("static")];
    out.extend(Constraint::immutable(
        xuc_xpath::parse("/patient[/clinicalTrial]").expect("static"),
    ));
    out.push(xuc_core::parse_constraint("(/patient/visit, ↑)").expect("static"));
    out
}

/// Example 4.1's mixed-type linear constraint set and implied goal.
pub fn example_4_1() -> (Vec<Constraint>, Constraint) {
    let set =
        ["(//a//c, ↑)", "(//b//c, ↑)", "(//a//b//c, ↓)", "(//a//b//a//c, ↑)", "(//b//a//b//c, ↑)"]
            .iter()
            .map(|s| xuc_core::parse_constraint(s).expect("static"))
            .collect();
    let goal = xuc_core::parse_constraint("(//b//a//c, ↑)").expect("static");
    (set, goal)
}

/// A synthetic hospital document: `patients` patients, each with up to
/// `max_visits` visits and a clinical-trial marker with probability 0.5.
pub fn hospital(rng: &mut impl Rng, patients: usize, max_visits: usize) -> DataTree {
    let mut t = DataTree::new("hospital");
    let root = t.root_id();
    for _ in 0..patients {
        let p = t.add(root, "patient").expect("fresh");
        for _ in 0..rng.random_range(0..=max_visits) {
            let v = t.add(p, "visit").expect("fresh");
            if rng.random_bool(0.3) {
                t.add(v, "report").expect("fresh");
            }
        }
        if rng.random_bool(0.5) {
            t.add(p, "clinicalTrial").expect("fresh");
        }
        if rng.random_bool(0.2) {
            t.add(p, "phone").expect("fresh");
        }
    }
    t
}

/// A synthetic hospital document grown to **at least** `target_nodes`
/// nodes (stopping at the first patient that crosses the target, so the
/// overshoot is a handful of nodes). This is the large-document generator
/// of the E-DLT delta-admission experiment: 10k/100k-node instances of
/// the same patient/visit/report/clinicalTrial/phone shape as
/// [`hospital`], where a small update batch touches a vanishing fraction
/// of the document.
pub fn hospital_sized(rng: &mut impl Rng, target_nodes: usize) -> DataTree {
    let mut t = DataTree::new("hospital");
    let root = t.root_id();
    while t.len() < target_nodes {
        let p = t.add(root, "patient").expect("fresh");
        for _ in 0..rng.random_range(0..=3) {
            let v = t.add(p, "visit").expect("fresh");
            if rng.random_bool(0.3) {
                t.add(v, "report").expect("fresh");
            }
        }
        if rng.random_bool(0.5) {
            t.add(p, "clinicalTrial").expect("fresh");
        }
        if rng.random_bool(0.2) {
            t.add(p, "phone").expect("fresh");
        }
    }
    t
}

/// Small, **localized** update batches against a [`hospital_sized`]
/// document for the E-DLT experiment: every update's edit scope stays a
/// small subtree deep in the document (never the hospital root), so delta
/// admission has something proportional to splice.
///
/// * `mixed = false` — pure relabels: `phone` leaves cycle to the
///   unprotected label `note` (within one batch every target is
///   distinct). Admission under the E-DLT suite accepts these, and the
///   whole apply→admit→commit path does **zero** pre-order walks.
/// * `mixed = true` — one third relabels, one third `note` leaf inserts
///   under patients (fresh ids minted here, so batches replay
///   deterministically), one third deletions of `phone` leaves. Every
///   dirty scope is a patient-sized subtree.
///
/// Batches are generated against `tree`'s **initial** population and are
/// meant to be applied one at a time (apply → measure → undo), sharing
/// targets across batches but never within one.
pub fn delta_batches(
    rng: &mut impl Rng,
    tree: &DataTree,
    batches: usize,
    size: usize,
    mixed: bool,
) -> Vec<Vec<xuc_xtree::Update>> {
    use xuc_xtree::Update;
    fn pick_distinct(
        rng: &mut impl Rng,
        pool: &[NodeId],
        used: &mut std::collections::HashSet<NodeId>,
    ) -> NodeId {
        loop {
            let id = pool[rng.random_range(0..pool.len())];
            if used.insert(id) {
                return id;
            }
        }
    }
    let by_label = |want: &str| -> Vec<NodeId> {
        tree.nodes().iter().filter(|n| n.label == Label::new(want)).map(|n| n.id).collect()
    };
    let phones = by_label("phone");
    let patients = by_label("patient");
    assert!(phones.len() > 2 * size, "document too small for {size}-update batches");
    let mut out = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut used = std::collections::HashSet::new();
        let mut batch = Vec::with_capacity(size);
        for i in 0..size {
            batch.push(if !mixed || i % 3 == 0 {
                Update::Relabel {
                    node: pick_distinct(rng, &phones, &mut used),
                    label: Label::new("note"),
                }
            } else if i % 3 == 1 {
                Update::InsertLeaf {
                    parent: patients[rng.random_range(0..patients.len())],
                    id: NodeId::fresh(),
                    label: Label::new("note"),
                }
            } else {
                Update::DeleteSubtree { node: pick_distinct(rng, &phones, &mut used) }
            });
        }
        out.push(batch);
    }
    out
}

/// A uniformly random tree with `n` non-root nodes over the label pool.
pub fn random_tree(rng: &mut impl Rng, labels: &[&str], n: usize) -> DataTree {
    let mut tree = DataTree::new("root");
    let mut ids: Vec<NodeId> = vec![tree.root_id()];
    for _ in 0..n {
        let parent = ids[rng.random_range(0..ids.len())];
        let label = Label::new(labels[rng.random_range(0..labels.len())]);
        ids.push(tree.add(parent, label).expect("fresh"));
    }
    tree
}

/// A random "bushy" tree of bounded depth (more realistic XML shape).
pub fn random_document(
    rng: &mut impl Rng,
    labels: &[&str],
    n: usize,
    max_depth: usize,
) -> DataTree {
    let mut tree = DataTree::new("root");
    let mut frontier: Vec<(NodeId, usize)> = vec![(tree.root_id(), 0)];
    for _ in 0..n {
        let idx = rng.random_range(0..frontier.len());
        let (parent, depth) = frontier[idx];
        let label = Label::new(labels[rng.random_range(0..labels.len())]);
        let id = tree.add(parent, label).expect("fresh");
        if depth + 1 < max_depth {
            frontier.push((id, depth + 1));
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::constraint;

    #[test]
    fn fig2_matches_example_2_1() {
        let (i, j) = fig2_pair();
        let cs = example_2_1_constraints();
        // c1 and c2 hold; c3 (the last) is violated.
        assert!(cs[0].satisfied_by(&i, &j));
        assert!(cs[1].satisfied_by(&i, &j));
        assert!(cs[2].satisfied_by(&i, &j));
        assert!(!cs[3].satisfied_by(&i, &j));
        assert_eq!(constraint::violations(&cs, &i, &j).len(), 1);
    }

    #[test]
    fn example_4_1_wellformed() {
        let (set, goal) = example_4_1();
        assert_eq!(set.len(), 5);
        assert!(set.iter().all(|c| c.range.is_linear()));
        assert!(goal.range.is_linear());
    }

    #[test]
    fn hospital_sizes() {
        let mut rng = rand::rng();
        let t = hospital(&mut rng, 50, 4);
        assert!(t.len() > 50);
        let q = xuc_xpath::parse("/patient").unwrap();
        assert_eq!(xuc_xpath::eval::eval(&q, &t).len(), 50);
    }

    #[test]
    fn hospital_sized_hits_target_and_batches_stay_local() {
        let mut rng = rand::rng();
        let t = hospital_sized(&mut rng, 2_000);
        assert!(t.len() >= 2_000 && t.len() < 2_010, "n = {}", t.len());
        for mixed in [false, true] {
            let batches = delta_batches(&mut rng, &t, 3, 8, mixed);
            assert_eq!(batches.len(), 3);
            for batch in &batches {
                assert_eq!(batch.len(), 8);
                // Valid against the initial tree, and every edit scope is a
                // patient-or-deeper subtree — never the hospital root.
                let mut work = t.clone();
                for u in batch {
                    let (_tok, scope) = xuc_xtree::apply_undoable(&mut work, u).unwrap();
                    if let xuc_xtree::EditScope::Structural { root } = scope {
                        let r = root.expect("local scopes are known");
                        assert_ne!(r, work.root_id(), "{u} must not dirty the root");
                    }
                }
            }
        }
    }

    #[test]
    fn random_trees_sized() {
        let mut rng = rand::rng();
        let t = random_tree(&mut rng, &["a", "b"], 30);
        assert_eq!(t.len(), 31);
        let d = random_document(&mut rng, &["a", "b", "c"], 40, 4);
        assert_eq!(d.len(), 41);
        assert!(d.height() <= 4);
    }
}
