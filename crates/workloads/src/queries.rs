//! Random queries and constraint sets per XPath fragment, plus families
//! with known implication status for calibrating the deciders.

use rand::Rng;
use xuc_core::{Constraint, ConstraintKind};
use xuc_xpath::{Axis, Pattern, PatternBuilder};

/// Knobs for random query generation.
#[derive(Debug, Clone, Copy)]
pub struct QueryGen<'a> {
    pub labels: &'a [&'a str],
    /// Spine length range (inclusive).
    pub spine: (usize, usize),
    /// Probability of a descendant edge (0 ⇒ fragment without //).
    pub descendant_p: f64,
    /// Probability of a wildcard test on non-output nodes
    /// (0 ⇒ fragment without *). Outputs stay concrete.
    pub wildcard_p: f64,
    /// Number of predicates to sprinkle (0 ⇒ linear fragment).
    pub predicates: usize,
}

impl<'a> QueryGen<'a> {
    pub fn pred_star(labels: &'a [&'a str]) -> Self {
        QueryGen { labels, spine: (1, 3), descendant_p: 0.0, wildcard_p: 0.25, predicates: 2 }
    }

    pub fn pred_desc(labels: &'a [&'a str]) -> Self {
        QueryGen { labels, spine: (1, 3), descendant_p: 0.4, wildcard_p: 0.0, predicates: 2 }
    }

    pub fn linear(labels: &'a [&'a str]) -> Self {
        QueryGen { labels, spine: (1, 4), descendant_p: 0.5, wildcard_p: 0.25, predicates: 0 }
    }

    pub fn plain(labels: &'a [&'a str]) -> Self {
        QueryGen { labels, spine: (1, 4), descendant_p: 0.0, wildcard_p: 0.0, predicates: 0 }
    }

    pub fn full(labels: &'a [&'a str]) -> Self {
        QueryGen { labels, spine: (1, 3), descendant_p: 0.3, wildcard_p: 0.2, predicates: 2 }
    }

    fn label(&self, rng: &mut impl Rng) -> String {
        self.labels[rng.random_range(0..self.labels.len())].to_string()
    }

    fn test(&self, rng: &mut impl Rng, output: bool) -> String {
        if !output && rng.random_bool(self.wildcard_p) {
            "*".to_string()
        } else {
            self.label(rng)
        }
    }

    fn axis(&self, rng: &mut impl Rng) -> Axis {
        if rng.random_bool(self.descendant_p) {
            Axis::Descendant
        } else {
            Axis::Child
        }
    }

    /// Generates one random query (concrete output).
    pub fn query(&self, rng: &mut impl Rng) -> Pattern {
        let spine_len = rng.random_range(self.spine.0..=self.spine.1);
        let mut b = PatternBuilder::new(self.axis(rng), self.test(rng, spine_len == 1).as_str());
        let mut spine = vec![b.root()];
        for k in 1..spine_len {
            let prev = *spine.last().expect("non-empty");
            spine.push(b.add(prev, self.axis(rng), self.test(rng, k + 1 == spine_len).as_str()));
        }
        let mut attachable = spine.clone();
        for _ in 0..self.predicates {
            if rng.random_bool(0.5) {
                continue;
            }
            let host = attachable[rng.random_range(0..attachable.len())];
            let p = b.add(host, self.axis(rng), self.test(rng, false).as_str());
            attachable.push(p);
        }
        b.finish(*spine.last().expect("non-empty"))
    }

    /// A random constraint with the given kind distribution
    /// (`up_p` = probability of ↑).
    pub fn constraint(&self, rng: &mut impl Rng, up_p: f64) -> Constraint {
        let kind =
            if rng.random_bool(up_p) { ConstraintKind::NoRemove } else { ConstraintKind::NoInsert };
        Constraint::new(self.query(rng), kind)
    }

    /// A random constraint set of size `n`.
    pub fn set(&self, rng: &mut impl Rng, n: usize, up_p: f64) -> Vec<Constraint> {
        (0..n).map(|_| self.constraint(rng, up_p)).collect()
    }
}

/// A family with known status: the goal range is built as the syntactic
/// combination of `k` ranges from the set, so the implication *holds* by
/// Proposition 3.1 (for `XP{/,[],*}` one-type inputs it is also detected
/// by the exact Theorem 4.4 procedure in PTIME).
pub fn implied_pred_star_family(
    rng: &mut impl Rng,
    labels: &[&str],
    n_constraints: usize,
    preds_per_range: usize,
    kind: ConstraintKind,
) -> (Vec<Constraint>, Constraint) {
    // All ranges share the spine /root_label and carry disjoint predicate
    // bundles; the goal takes the union of all predicates.
    let spine_label = labels[0];
    let mut set = Vec::new();
    let mut all_preds: Vec<String> = Vec::new();
    for i in 0..n_constraints {
        let mut preds = Vec::new();
        for p in 0..preds_per_range {
            let l = labels[1 + (i * preds_per_range + p) % (labels.len() - 1)];
            preds.push(format!("[/{l}x{i}p{p}]"));
        }
        let _ = rng;
        all_preds.extend(preds.iter().cloned());
        let q = xuc_xpath::parse(&format!("/{spine_label}{}", preds.join(""))).expect("generated");
        set.push(Constraint::new(q, kind));
    }
    let goal_q =
        xuc_xpath::parse(&format!("/{spine_label}{}", all_preds.join(""))).expect("generated");
    (set, Constraint::new(goal_q, kind))
}

/// A family with known *negative* status: the goal asks for a predicate
/// no range protects.
pub fn not_implied_pred_star_family(
    rng: &mut impl Rng,
    labels: &[&str],
    n_constraints: usize,
    kind: ConstraintKind,
) -> (Vec<Constraint>, Constraint) {
    let (set, goal) = implied_pred_star_family(rng, labels, n_constraints, 1, kind);
    let weakened = xuc_xpath::parse(&format!("{}[/unprotected]", goal.range)).expect("generated");
    (set, Constraint::new(weakened, kind))
}

/// A deterministic **overlapping-prefix** suite of `count` distinct linear
/// patterns over `labels`: every pattern starts with a prefix of the
/// cyclic spine `/l0/l1/l2/…` (length `1 ..= depth`, so prefixes nest) and
/// ends in one of a family of short tails (`/x`, `//x`, `//x/y`,
/// `/*/x//y`). This is the shape of a realistic constraint suite — many
/// ranges protecting neighborhoods of the same few document spines — and
/// the stress case the set-at-a-time compiler is built for: the shared
/// prefixes collapse into shared automaton states, so one compiled pass
/// answers the whole suite.
pub fn overlapping_prefix_suite(labels: &[&str], count: usize, depth: usize) -> Vec<Pattern> {
    assert!(!labels.is_empty(), "need at least one label");
    assert!(depth >= 1, "need a positive prefix depth");
    let l = labels.len();
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let mut src = String::new();
        for k in 0..1 + (i % depth) {
            src.push('/');
            src.push_str(labels[k % l]);
        }
        let j = i / depth;
        if j < l {
            src.push_str(&format!("/{}", labels[j]));
        } else if j < 2 * l {
            src.push_str(&format!("//{}", labels[j - l]));
        } else if j < 2 * l + l * l {
            let t = j - 2 * l;
            src.push_str(&format!("//{}/{}", labels[t / l], labels[t % l]));
        } else {
            // The last family never wraps: once its l² wildcard tails are
            // exhausted, a growing `/*` chain keeps every pattern distinct
            // (distinct (prefix, chain length, tail) ⇒ distinct pattern).
            let t = j - 2 * l - l * l;
            src.push_str(&format!("/*/{}", labels[(t % (l * l)) / l]));
            for _ in 0..t / (l * l) {
                src.push_str("/*");
            }
            src.push_str(&format!("//{}", labels[t % l]));
        }
        out.push(xuc_xpath::parse(&src).expect("generated"));
    }
    out
}

/// [`overlapping_prefix_suite`] as a constraint set plus a refutable goal:
/// every suite pattern protects its range with `kind`, while the goal
/// protects `//unprotected`, which no constraint covers — so the
/// counterexample search actually has to verify candidates against the
/// whole batch (the set-at-a-time path once `count` crosses the
/// compiled-batch threshold).
pub fn overlapping_prefix_constraints(
    labels: &[&str],
    count: usize,
    depth: usize,
    kind: ConstraintKind,
) -> (Vec<Constraint>, Constraint) {
    let set = overlapping_prefix_suite(labels, count, depth)
        .into_iter()
        .map(|q| Constraint::new(q, kind))
        .collect();
    let goal = Constraint::new(xuc_xpath::parse("//unprotected").expect("static"), kind);
    (set, goal)
}

/// A linear family with known status built from chains: constraints
/// protect `//l1//l2…//lk` for every prefix; the goal is the full chain
/// (implied) or the reversed chain (not implied for k ≥ 2).
pub fn linear_chain_family(
    labels: &[&str],
    k: usize,
    kind: ConstraintKind,
    implied: bool,
) -> (Vec<Constraint>, Constraint) {
    let chain: Vec<&str> = (0..k).map(|i| labels[i % labels.len()]).collect();
    let full: String = chain.iter().map(|l| format!("//{l}")).collect();
    let set = vec![Constraint::new(xuc_xpath::parse(&full).expect("generated"), kind)];
    let goal_src = if implied {
        full
    } else {
        let mut rev = chain.clone();
        rev.reverse();
        rev.iter().map(|l| format!("//{l}")).collect()
    };
    (set, Constraint::new(xuc_xpath::parse(&goal_src).expect("generated"), kind))
}

/// Drops duplicate queries from a generated suite, keeping first
/// occurrences in order. Duplicates are detected on the canonical
/// serialization (the same rendering [`Pattern::canonical_fingerprint`]
/// hashes — exact, no 64-bit collision risk), so patterns that denote the
/// same query collapse even when their arenas (or predicate orders)
/// differ — generators use this to guarantee that a "k-pattern" sweep
/// point really exercises k distinct queries.
pub fn dedup_suite(suite: Vec<Pattern>) -> Vec<Pattern> {
    let mut seen = std::collections::HashSet::new();
    suite.into_iter().filter(|q| seen.insert(q.to_string())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_xpath::Features;

    #[test]
    fn generators_respect_fragments() {
        let mut rng = rand::rng();
        let labels = ["a", "b", "c"];
        for _ in 0..50 {
            let q = QueryGen::pred_star(&labels).query(&mut rng);
            assert!(Features::of(&q).in_pred_star(), "{q} must avoid //");
            assert!(q.is_concrete());
            let q = QueryGen::linear(&labels).query(&mut rng);
            assert!(q.is_linear(), "{q} must be linear");
            let q = QueryGen::plain(&labels).query(&mut rng);
            assert!(Features::of(&q).is_plain(), "{q} must be plain");
            let q = QueryGen::pred_desc(&labels).query(&mut rng);
            assert!(Features::of(&q).in_pred_desc(), "{q} must avoid *");
        }
    }

    #[test]
    fn implied_family_is_implied() {
        let mut rng = rand::rng();
        let labels = ["doc", "a", "b", "c"];
        for n in 1..5 {
            let (set, goal) =
                implied_pred_star_family(&mut rng, &labels, n, 2, ConstraintKind::NoRemove);
            assert!(
                xuc_core::implication::ptime::implies_pred_star(&set, &goal),
                "family of size {n} must be implied"
            );
        }
    }

    #[test]
    fn not_implied_family_is_not() {
        let mut rng = rand::rng();
        let labels = ["doc", "a", "b"];
        let (set, goal) =
            not_implied_pred_star_family(&mut rng, &labels, 3, ConstraintKind::NoInsert);
        assert!(!xuc_core::implication::ptime::implies_pred_star(&set, &goal));
    }

    #[test]
    fn dedup_suite_drops_equal_queries_only() {
        let dup: Vec<Pattern> = ["/a[/b][/c]", "/a[/c][/b]", "/a[/b]", "//a"]
            .iter()
            .map(|s| xuc_xpath::parse(s).unwrap())
            .collect();
        let kept = dedup_suite(dup);
        let strs: Vec<String> = kept.iter().map(Pattern::to_string).collect();
        assert_eq!(strs, vec!["/a[/b][/c]", "/a[/b]", "//a"]);
    }

    #[test]
    fn overlapping_prefix_suites_are_duplicate_free() {
        let labels = ["a", "b", "c", "d", "e"];
        for count in [8usize, 64, 256] {
            let suite = overlapping_prefix_suite(&labels, count, 6);
            assert_eq!(dedup_suite(suite).len(), count, "sweep point {count} must be distinct");
        }
    }

    #[test]
    fn overlapping_prefix_suites_are_linear_and_distinct() {
        let labels = ["a", "b", "c", "d", "e"];
        for (count, depth) in [(12usize, 3usize), (64, 6), (256, 6)] {
            let suite = overlapping_prefix_suite(&labels, count, depth);
            assert_eq!(suite.len(), count);
            let mut printed: Vec<String> = suite.iter().map(|q| q.to_string()).collect();
            for q in &suite {
                assert!(q.is_linear(), "{q} must be linear");
            }
            printed.sort();
            printed.dedup();
            assert_eq!(printed.len(), count, "suite of {count} must be duplicate-free");
        }
        // Tiny label pools exhaust the tail families early: the growing
        // wildcard chain must keep the suite duplicate-free anyway.
        let tiny = ["a", "b"];
        for (count, depth) in [(40usize, 2usize), (100, 3)] {
            let suite = overlapping_prefix_suite(&tiny, count, depth);
            assert_eq!(suite.len(), count);
            let mut printed: Vec<String> = suite.iter().map(|q| q.to_string()).collect();
            for q in &suite {
                assert!(q.is_linear(), "{q} must be linear");
            }
            printed.sort();
            printed.dedup();
            assert_eq!(printed.len(), count, "tiny-pool suite of {count} must be duplicate-free");
        }
    }

    #[test]
    fn overlapping_prefix_constraints_are_refutable() {
        let labels = ["a", "b", "c"];
        let (set, goal) = overlapping_prefix_constraints(&labels, 20, 4, ConstraintKind::NoRemove);
        assert_eq!(set.len(), 20);
        let ce = xuc_core::implication::search::find_counterexample(&set, &goal, 5_000)
            .expect("goal protects a range no constraint covers");
        assert!(ce.verify(&set, &goal));
    }

    #[test]
    fn linear_chain_families() {
        let labels = ["a", "b", "c"];
        let (set, goal) = linear_chain_family(&labels, 3, ConstraintKind::NoRemove, true);
        assert!(xuc_core::implication::linear::implies_linear(&set, &goal).is_implied());
        let (set, goal) = linear_chain_family(&labels, 3, ConstraintKind::NoRemove, false);
        assert!(xuc_core::implication::linear::implies_linear(&set, &goal).is_not_implied());
    }
}
