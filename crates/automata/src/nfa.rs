//! Nondeterministic finite automata over label alphabets.

use xuc_xpath::{Axis, NodeTest, Pattern};
use xuc_xtree::Label;

/// A transition guard: a specific label or any label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    Label(Label),
    Any,
}

impl Guard {
    /// Does the guard admit label `l`?
    pub fn accepts(self, l: Label) -> bool {
        match self {
            Guard::Label(g) => g == l,
            Guard::Any => true,
        }
    }
}

/// A nondeterministic finite automaton (no epsilon transitions; linear
/// patterns do not need them).
#[derive(Debug, Clone)]
pub struct Nfa {
    state_count: usize,
    start: usize,
    accept: Vec<usize>,
    /// (from, guard, to)
    transitions: Vec<(usize, Guard, usize)>,
}

impl Nfa {
    /// An NFA with a single start state and no transitions.
    pub fn new() -> Self {
        Nfa { state_count: 1, start: 0, accept: Vec::new(), transitions: Vec::new() }
    }

    /// Adds a fresh state and returns its index.
    pub fn add_state(&mut self) -> usize {
        self.state_count += 1;
        self.state_count - 1
    }

    pub fn start(&self) -> usize {
        self.start
    }

    pub fn state_count(&self) -> usize {
        self.state_count
    }

    pub fn mark_accept(&mut self, s: usize) {
        if !self.accept.contains(&s) {
            self.accept.push(s);
        }
    }

    pub fn add_transition(&mut self, from: usize, guard: Guard, to: usize) {
        self.transitions.push((from, guard, to));
    }

    /// The accept states, in the order they were marked.
    pub fn accept_states(&self) -> &[usize] {
        &self.accept
    }

    /// The raw transition list `(from, guard, to)`.
    pub fn transitions(&self) -> &[(usize, Guard, usize)] {
        &self.transitions
    }

    /// Builds the NFA recognizing the root-to-node label strings selected by
    /// a **linear** pattern: `/l` appends `l`; `//l` allows any padding
    /// before `l`; wildcards consume any single symbol.
    ///
    /// # Panics
    /// Panics when the pattern has predicates.
    pub fn from_linear_pattern(q: &Pattern) -> Nfa {
        let steps = q
            .linear_steps()
            .expect("from_linear_pattern requires a linear (predicate-free) pattern");
        let mut nfa = Nfa::new();
        let mut cur = nfa.start();
        for (axis, test) in steps {
            if axis == Axis::Descendant {
                // Any padding before the tested symbol.
                nfa.add_transition(cur, Guard::Any, cur);
            }
            let next = nfa.add_state();
            let guard = match test {
                NodeTest::Label(l) => Guard::Label(l),
                NodeTest::Wildcard => Guard::Any,
            };
            nfa.add_transition(cur, guard, next);
            cur = next;
        }
        nfa.mark_accept(cur);
        nfa
    }

    /// Does the NFA accept `word`?
    pub fn accepts(&self, word: &[Label]) -> bool {
        let mut current: Vec<bool> = vec![false; self.state_count];
        current[self.start] = true;
        for &l in word {
            let mut next = vec![false; self.state_count];
            for &(from, guard, to) in &self.transitions {
                if current[from] && guard.accepts(l) {
                    next[to] = true;
                }
            }
            current = next;
        }
        self.accept.iter().any(|&s| current[s])
    }

    /// Subset construction over an explicit alphabet, producing a complete
    /// DFA. Symbols outside the alphabet are not representable in the DFA;
    /// callers use [`crate::effective_alphabet`] so a designated `z` label
    /// stands for everything else.
    pub fn determinize(&self, alphabet: &[Label]) -> crate::dfa::Dfa {
        use std::collections::HashMap;
        let mut index: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        let mut next: Vec<Vec<usize>> = Vec::new();

        let start_subset = vec![self.start];
        index.insert(start_subset.clone(), 0);
        subsets.push(start_subset);
        next.push(vec![usize::MAX; alphabet.len()]);

        let mut work = vec![0usize];
        while let Some(s) = work.pop() {
            for (ai, &l) in alphabet.iter().enumerate() {
                let mut target: Vec<usize> = Vec::new();
                for &(from, guard, to) in &self.transitions {
                    if subsets[s].contains(&from) && guard.accepts(l) && !target.contains(&to) {
                        target.push(to);
                    }
                }
                target.sort_unstable();
                let t = match index.get(&target) {
                    Some(&t) => t,
                    None => {
                        let t = subsets.len();
                        index.insert(target.clone(), t);
                        subsets.push(target);
                        next.push(vec![usize::MAX; alphabet.len()]);
                        work.push(t);
                        t
                    }
                };
                next[s][ai] = t;
            }
        }

        let accept =
            subsets.iter().map(|subset| subset.iter().any(|s| self.accept.contains(s))).collect();
        crate::dfa::Dfa::from_parts(alphabet.to_vec(), 0, accept, next)
    }
}

impl Default for Nfa {
    fn default() -> Self {
        Nfa::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_xpath::parse;

    fn labels(names: &[&str]) -> Vec<Label> {
        names.iter().map(|n| Label::new(n)).collect()
    }

    #[test]
    fn child_chain_language() {
        let nfa = Nfa::from_linear_pattern(&parse("/a/b").unwrap());
        assert!(nfa.accepts(&labels(&["a", "b"])));
        assert!(!nfa.accepts(&labels(&["a"])));
        assert!(!nfa.accepts(&labels(&["a", "b", "c"])));
        assert!(!nfa.accepts(&labels(&["b", "a"])));
    }

    #[test]
    fn descendant_padding() {
        let nfa = Nfa::from_linear_pattern(&parse("//a//b").unwrap());
        assert!(nfa.accepts(&labels(&["a", "b"])));
        assert!(nfa.accepts(&labels(&["x", "a", "y", "y", "b"])));
        assert!(!nfa.accepts(&labels(&["b", "a"])));
        assert!(!nfa.accepts(&labels(&["a"])));
    }

    #[test]
    fn wildcard_consumes_one() {
        let nfa = Nfa::from_linear_pattern(&parse("/a/*/b").unwrap());
        assert!(nfa.accepts(&labels(&["a", "q", "b"])));
        assert!(!nfa.accepts(&labels(&["a", "b"])));
        assert!(!nfa.accepts(&labels(&["a", "q", "q", "b"])));
    }

    #[test]
    #[should_panic(expected = "linear")]
    fn predicates_rejected() {
        let _ = Nfa::from_linear_pattern(&parse("/a[/b]").unwrap());
    }

    #[test]
    fn determinize_preserves_language() {
        let q = parse("//a/*//b").unwrap();
        let nfa = Nfa::from_linear_pattern(&q);
        let alphabet = labels(&["a", "b", "z"]);
        let dfa = nfa.determinize(&alphabet);
        // Exhaustively compare on all words up to length 5.
        let mut words: Vec<Vec<Label>> = vec![vec![]];
        for _ in 0..5 {
            let mut next: Vec<Vec<Label>> = Vec::new();
            for w in &words {
                for &l in &alphabet {
                    let mut w2 = w.clone();
                    w2.push(l);
                    next.push(w2);
                }
            }
            for w in &next {
                assert_eq!(nfa.accepts(w), dfa.accepts(w), "word {w:?}");
            }
            words = next;
        }
    }
}
