//! The synchronous product of many DFAs.
//!
//! The implication procedures for linear constraints (Theorems 4.3/4.8 and
//! 5.4) reason about which *combinations* of ranges a node's root-to-node
//! path can belong to. A product state records one state per component DFA;
//! its **acceptance set** says exactly which component languages contain
//! every word reaching the state. Reachable product states therefore
//! enumerate the realizable membership vectors — exponential in the number
//! of constraints in the worst case, matching the paper's "polynomial when
//! the number of constraints is bounded" refinement.
//!
//! Acceptance sets use the ranked [`StateSetTable`] representation shared
//! with [`crate::PatternSetCompiler`], so products over more than 64
//! components are fully supported; only the legacy `u64`
//! [`ProductDfa::accept_mask`] accessor retains the 64-component bound.

use crate::dfa::Dfa;
use crate::stateset::StateSetTable;
use std::fmt;
use xuc_xtree::Label;

/// Why a product automaton could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProductError {
    /// The product of zero automata is not defined here.
    NoComponents,
    /// Component `index` disagrees with component 0 on the alphabet.
    AlphabetMismatch { index: usize },
}

impl fmt::Display for ProductError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProductError::NoComponents => write!(f, "product of zero automata"),
            ProductError::AlphabetMismatch { index } => {
                write!(f, "component {index} uses a different alphabet than component 0")
            }
        }
    }
}

impl std::error::Error for ProductError {}

/// Synchronous product of component DFAs over a shared alphabet.
///
/// Acceptance sets are stored in the ranked [`StateSetTable`]
/// representation, so the component count is unbounded (the former
/// 64-component `u64` ceiling applies only to the legacy
/// [`accept_mask`](Self::accept_mask) accessor; the hot set-evaluation
/// path reads whole rows via [`accept_row`](Self::accept_row)).
#[derive(Debug, Clone)]
pub struct ProductDfa {
    alphabet: Vec<Label>,
    components: usize,
    /// Component state vectors, indexed by product state.
    state_vecs: Vec<Vec<usize>>,
    /// Row `s` holds the components accepting in product state `s`.
    accept: StateSetTable,
    /// `next[state][symbol]`.
    next: Vec<Vec<usize>>,
    /// BFS parent pointers (state, symbol) for shortest-witness extraction.
    prev: Vec<Option<(usize, usize)>>,
    start: usize,
}

impl ProductDfa {
    /// Builds the reachable product of `dfas`.
    ///
    /// # Panics
    /// Panics if `dfas` is empty or the alphabets differ — see
    /// [`try_build`](Self::try_build) for the non-panicking form.
    pub fn build(dfas: &[Dfa]) -> ProductDfa {
        Self::try_build(dfas).unwrap_or_else(|e| panic!("ProductDfa::build: {e}"))
    }

    /// Builds the reachable product of `dfas`, or explains why it cannot:
    /// zero components or mismatched alphabets.
    pub fn try_build(dfas: &[Dfa]) -> Result<ProductDfa, ProductError> {
        if dfas.is_empty() {
            return Err(ProductError::NoComponents);
        }
        let alphabet = dfas[0].alphabet().to_vec();
        for (index, d) in dfas.iter().enumerate() {
            if d.alphabet() != &alphabet[..] {
                return Err(ProductError::AlphabetMismatch { index });
            }
        }
        let k = alphabet.len();
        let start_vec: Vec<usize> = dfas.iter().map(|d| d.start()).collect();

        let mut index = std::collections::HashMap::new();
        let mut state_vecs = vec![start_vec.clone()];
        index.insert(start_vec, 0usize);
        let mut next: Vec<Vec<usize>> = vec![vec![usize::MAX; k]];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None];
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(s) = queue.pop_front() {
            for sym in 0..k {
                let target: Vec<usize> =
                    state_vecs[s].iter().zip(dfas).map(|(&cs, d)| d.step(cs, sym)).collect();
                let t = match index.get(&target) {
                    Some(&t) => t,
                    None => {
                        let t = state_vecs.len();
                        index.insert(target.clone(), t);
                        state_vecs.push(target);
                        next.push(vec![usize::MAX; k]);
                        prev.push(Some((s, sym)));
                        queue.push_back(t);
                        t
                    }
                };
                next[s][sym] = t;
            }
        }

        let mut accept = StateSetTable::new(dfas.len());
        for vec in &state_vecs {
            let row = accept.push_row();
            for (i, (&cs, d)) in vec.iter().zip(dfas).enumerate() {
                if d.is_accepting(cs) {
                    accept.insert(row, i);
                }
            }
        }

        Ok(ProductDfa {
            alphabet,
            components: dfas.len(),
            state_vecs,
            accept,
            next,
            prev,
            start: 0,
        })
    }

    pub fn alphabet(&self) -> &[Label] {
        &self.alphabet
    }

    pub fn component_count(&self) -> usize {
        self.components
    }

    pub fn state_count(&self) -> usize {
        self.state_vecs.len()
    }

    pub fn start(&self) -> usize {
        self.start
    }

    /// Bit `i` set iff component `i` accepts every word reaching `state`.
    ///
    /// # Panics
    /// Panics when the product has more than 64 components (the mask
    /// would truncate); wide products read [`accept_row`](Self::accept_row).
    pub fn accept_mask(&self, state: usize) -> u64 {
        self.accept.as_u64(state)
    }

    /// The ranked acceptance row of `state`: `⌈components / 64⌉` packed
    /// words, bit `i` set iff component `i` accepts every word reaching
    /// the state. Valid at any component count.
    pub fn accept_row(&self, state: usize) -> &[u64] {
        self.accept.row(state)
    }

    /// Does component `i` accept in `state`?
    pub fn component_accepts(&self, state: usize, i: usize) -> bool {
        self.accept.contains(state, i)
    }

    pub fn step(&self, state: usize, symbol: usize) -> usize {
        self.next[state][symbol]
    }

    pub fn symbol_index(&self, l: Label) -> usize {
        self.alphabet
            .iter()
            .position(|&a| a == l)
            .unwrap_or_else(|| panic!("label {l} not in product alphabet"))
    }

    /// Runs the product on a word.
    pub fn run(&self, word: &[Label]) -> usize {
        word.iter().fold(self.start, |s, &l| self.step(s, self.symbol_index(l)))
    }

    /// The states visited by `word`, including the start state
    /// (length = `word.len() + 1`). These are the states of the prefixes —
    /// i.e. the ancestors of a node with this root-to-node path.
    pub fn trace(&self, word: &[Label]) -> Vec<usize> {
        let mut out = Vec::with_capacity(word.len() + 1);
        let mut s = self.start;
        out.push(s);
        for &l in word {
            s = self.step(s, self.symbol_index(l));
            out.push(s);
        }
        out
    }

    /// A shortest word reaching `state` from the start (BFS tree witness).
    pub fn witness(&self, state: usize) -> Vec<Label> {
        let mut cur = state;
        let mut word = Vec::new();
        while let Some((p, sym)) = self.prev[cur] {
            word.push(self.alphabet[sym]);
            cur = p;
        }
        word.reverse();
        word
    }

    /// Predecessor relation: for each state, the states with an edge into it.
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.state_count()];
        for (s, row) in self.next.iter().enumerate() {
            for &t in row {
                if !preds[t].contains(&s) {
                    preds[t].push(s);
                }
            }
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use xuc_xpath::parse;

    fn labels(names: &[&str]) -> Vec<Label> {
        names.iter().map(|n| Label::new(n)).collect()
    }

    fn build(sources: &[&str], alphabet: &[&str]) -> ProductDfa {
        let alpha = labels(alphabet);
        let dfas: Vec<Dfa> = sources
            .iter()
            .map(|s| Nfa::from_linear_pattern(&parse(s).unwrap()).determinize(&alpha))
            .collect();
        ProductDfa::build(&dfas)
    }

    #[test]
    fn masks_track_membership() {
        let p = build(&["//a//c", "//b//c"], &["a", "b", "c", "z"]);
        let s = p.run(&labels(&["a", "b", "c"]));
        assert_eq!(p.accept_mask(s), 0b11);
        let s2 = p.run(&labels(&["a", "c"]));
        assert_eq!(p.accept_mask(s2), 0b01);
        let s3 = p.run(&labels(&["z"]));
        assert_eq!(p.accept_mask(s3), 0);
    }

    #[test]
    fn witness_reaches_state() {
        let p = build(&["//a//c", "//b"], &["a", "b", "c", "z"]);
        for state in 0..p.state_count() {
            let w = p.witness(state);
            assert_eq!(p.run(&w), state, "witness must reach its state");
        }
    }

    #[test]
    fn trace_length_and_prefixes() {
        let p = build(&["//a"], &["a", "z"]);
        let word = labels(&["z", "a", "z"]);
        let trace = p.trace(&word);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0], p.start());
        assert_eq!(*trace.last().unwrap(), p.run(&word));
    }

    #[test]
    fn predecessors_cover_all_edges() {
        let p = build(&["/a/b"], &["a", "b", "z"]);
        let preds = p.predecessors();
        for s in 0..p.state_count() {
            for sym in 0..p.alphabet().len() {
                let t = p.step(s, sym);
                assert!(preds[t].contains(&s));
            }
        }
    }

    #[test]
    fn component_accepts_matches_mask() {
        let p = build(&["//a", "//b"], &["a", "b", "z"]);
        let s = p.run(&labels(&["a"]));
        assert!(p.component_accepts(s, 0));
        assert!(!p.component_accepts(s, 1));
    }

    #[test]
    fn ranked_rows_support_past_64_components() {
        // The former u64 ceiling: 130 components must build, and the
        // ranked rows must track every component faithfully.
        let alpha = labels(&["a", "b", "z"]);
        let wants_a = Nfa::from_linear_pattern(&parse("//a").unwrap()).determinize(&alpha);
        let wants_b = Nfa::from_linear_pattern(&parse("//b").unwrap()).determinize(&alpha);
        let many: Vec<Dfa> =
            (0..130).map(|i| if i % 2 == 0 { wants_a.clone() } else { wants_b.clone() }).collect();
        let p = ProductDfa::try_build(&many).expect("ranked rows have no component ceiling");
        assert_eq!(p.component_count(), 130);

        let s = p.run(&labels(&["b", "a"]));
        assert_eq!(p.accept_row(s).len(), 130usize.div_ceil(64));
        for i in 0..130 {
            assert_eq!(p.component_accepts(s, i), i % 2 == 0, "component {i} after 'ba'");
        }
        let s = p.run(&labels(&["a", "b"]));
        for i in 0..130 {
            assert_eq!(p.component_accepts(s, i), i % 2 == 1, "component {i} after 'ab'");
        }
        let s = p.run(&labels(&["z"]));
        assert!(p.accept_row(s).iter().all(|&w| w == 0));
    }

    #[test]
    fn accept_mask_matches_rows_at_64_and_below() {
        let alpha = labels(&["a", "z"]);
        let one = Nfa::from_linear_pattern(&parse("//a").unwrap()).determinize(&alpha);
        let p = ProductDfa::try_build(&vec![one; 64]).expect("64 components");
        let s = p.run(&labels(&["a"]));
        assert_eq!(p.accept_mask(s), u64::MAX);
        assert_eq!(p.accept_row(s), &[u64::MAX]);
    }

    #[test]
    fn try_build_rejects_empty_and_mismatched() {
        assert!(matches!(ProductDfa::try_build(&[]), Err(ProductError::NoComponents)));
        let a = Nfa::from_linear_pattern(&parse("//a").unwrap()).determinize(&labels(&["a", "z"]));
        let b = Nfa::from_linear_pattern(&parse("//b").unwrap()).determinize(&labels(&["b", "z"]));
        assert!(matches!(
            ProductDfa::try_build(&[a, b]),
            Err(ProductError::AlphabetMismatch { index: 1 })
        ));
    }
}
