//! The ranked state-set representation shared by every multi-component
//! automaton in this crate.
//!
//! Both [`crate::ProductDfa`] and [`crate::PatternSetCompiler`] need to
//! answer, per automaton state, "which of the `k` components accept
//! here?". With `k ≤ 64` a plain `u64` mask suffices, but the
//! set-at-a-time evaluation path runs over batches of dozens to hundreds
//! of patterns, so the acceptance sets are stored *ranked*: one dense row
//! of `⌈k / 64⌉` words per state, laid out contiguously so the hot loop
//! reads a state's whole row as a single slice. Word `w` of a row covers
//! components `64·w .. 64·w + 63`; bit `i & 63` of word `i >> 6` is
//! component `i` — the same packing `xuc_xpath`'s bitset evaluation
//! engine uses for its satisfaction rows, so rows can be consumed
//! directly as satisfied-pattern bitsets.

use std::fmt;

/// A table of fixed-width component bitsets: one row per automaton state,
/// one bit per component.
///
/// ```
/// use xuc_automata::StateSetTable;
///
/// let mut t = StateSetTable::new(130); // 130 components → 3 words per row
/// assert_eq!(t.words_per_row(), 3);
/// let s0 = t.push_row();
/// let s1 = t.push_row();
/// t.insert(s1, 0);
/// t.insert(s1, 129);
/// assert!(t.contains(s1, 129) && !t.contains(s0, 129));
/// assert_eq!(t.iter_row(s1).collect::<Vec<_>>(), vec![0, 129]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct StateSetTable {
    components: usize,
    words: usize,
    bits: Vec<u64>,
}

impl StateSetTable {
    /// An empty table whose rows hold `components` bits each.
    pub fn new(components: usize) -> StateSetTable {
        StateSetTable { components, words: components.div_ceil(64).max(1), bits: Vec::new() }
    }

    /// Number of components (bits) per row.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Number of `u64` words per row: `⌈components / 64⌉` (min 1).
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// Number of rows (states) stored.
    pub fn len(&self) -> usize {
        self.bits.len() / self.words
    }

    /// Is the table empty (no rows)?
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Appends an all-zero row and returns its index.
    pub fn push_row(&mut self) -> usize {
        self.bits.resize(self.bits.len() + self.words, 0);
        self.len() - 1
    }

    /// Appends a pre-packed row of exactly
    /// [`words_per_row`](Self::words_per_row) words and returns its index.
    ///
    /// # Panics
    /// Panics when `row` has the wrong width.
    pub fn push_packed(&mut self, row: &[u64]) -> usize {
        assert_eq!(row.len(), self.words, "packed row width mismatch");
        self.bits.extend_from_slice(row);
        self.len() - 1
    }

    /// Sets bit `component` of `row`.
    ///
    /// # Panics
    /// Panics when `component` is out of range.
    pub fn insert(&mut self, row: usize, component: usize) {
        assert!(component < self.components, "component {component} out of range");
        self.bits[row * self.words + (component >> 6)] |= 1u64 << (component & 63);
    }

    /// Is bit `component` of `row` set?
    pub fn contains(&self, row: usize, component: usize) -> bool {
        component < self.components
            && self.bits[row * self.words + (component >> 6)] & (1u64 << (component & 63)) != 0
    }

    /// The packed words of `row` (length [`words_per_row`](Self::words_per_row)).
    pub fn row(&self, row: usize) -> &[u64] {
        &self.bits[row * self.words..(row + 1) * self.words]
    }

    /// Does `row` contain no components at all?
    pub fn row_is_empty(&self, row: usize) -> bool {
        self.row(row).iter().all(|&w| w == 0)
    }

    /// The row as a single `u64`, for callers predating the ranked
    /// representation.
    ///
    /// # Panics
    /// Panics when the table holds more than 64 components (the mask
    /// would silently truncate); use [`row`](Self::row) instead.
    pub fn as_u64(&self, row: usize) -> u64 {
        assert!(
            self.components <= 64,
            "{} components do not fit a u64 mask; use row() for the ranked form",
            self.components
        );
        self.bits[row * self.words]
    }

    /// Iterates the set components of `row` in ascending order.
    pub fn iter_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(row).iter().enumerate().flat_map(|(wi, &word)| {
            (0..64).filter(move |b| word & (1u64 << b) != 0).map(move |b| (wi << 6) | b)
        })
    }
}

impl fmt::Debug for StateSetTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateSetTable({} rows × {} components)", self.len(), self.components)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_word_rows() {
        let mut t = StateSetTable::new(3);
        assert_eq!(t.words_per_row(), 1);
        let r = t.push_row();
        t.insert(r, 0);
        t.insert(r, 2);
        assert_eq!(t.as_u64(r), 0b101);
        assert!(t.contains(r, 0) && !t.contains(r, 1) && t.contains(r, 2));
        assert!(!t.contains(r, 99), "out-of-range membership is false, not a panic");
        assert_eq!(t.iter_row(r).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn multi_word_rows_round_trip() {
        let mut t = StateSetTable::new(200);
        assert_eq!(t.words_per_row(), 4);
        let r0 = t.push_row();
        let r1 = t.push_row();
        for c in [0usize, 63, 64, 127, 128, 199] {
            t.insert(r1, c);
        }
        assert!(t.row_is_empty(r0));
        assert!(!t.row_is_empty(r1));
        assert_eq!(t.iter_row(r1).collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
        assert_eq!(t.row(r1).len(), 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn push_packed_matches_insert() {
        let mut a = StateSetTable::new(70);
        let r = a.push_row();
        a.insert(r, 1);
        a.insert(r, 69);
        let mut b = StateSetTable::new(70);
        let rb = b.push_packed(a.row(r));
        assert_eq!(a.row(r), b.row(rb));
    }

    #[test]
    #[should_panic(expected = "do not fit a u64")]
    fn as_u64_rejects_wide_tables() {
        let mut t = StateSetTable::new(65);
        let r = t.push_row();
        let _ = t.as_u64(r);
    }

    #[test]
    fn zero_components_still_has_one_word() {
        let mut t = StateSetTable::new(0);
        assert_eq!(t.words_per_row(), 1);
        let r = t.push_row();
        assert!(t.row_is_empty(r));
        assert_eq!(t.iter_row(r).count(), 0);
    }
}
