//! Complete deterministic finite automata over an explicit label alphabet.

use xuc_xtree::Label;

/// A complete DFA: every state has exactly one successor per alphabet
/// symbol.
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet: Vec<Label>,
    start: usize,
    accept: Vec<bool>,
    /// `next[state][symbol_index]`
    next: Vec<Vec<usize>>,
}

impl Dfa {
    pub(crate) fn from_parts(
        alphabet: Vec<Label>,
        start: usize,
        accept: Vec<bool>,
        next: Vec<Vec<usize>>,
    ) -> Dfa {
        debug_assert_eq!(accept.len(), next.len());
        debug_assert!(next.iter().all(|row| row.len() == alphabet.len()));
        Dfa { alphabet, start, accept, next }
    }

    pub fn alphabet(&self) -> &[Label] {
        &self.alphabet
    }

    pub fn state_count(&self) -> usize {
        self.accept.len()
    }

    pub fn start(&self) -> usize {
        self.start
    }

    pub fn is_accepting(&self, state: usize) -> bool {
        self.accept[state]
    }

    /// Index of a label in the alphabet.
    ///
    /// # Panics
    /// Panics when the label is not in the alphabet; callers map foreign
    /// labels to the designated `z` symbol first.
    pub fn symbol_index(&self, l: Label) -> usize {
        self.alphabet
            .iter()
            .position(|&a| a == l)
            .unwrap_or_else(|| panic!("label {l} not in automaton alphabet"))
    }

    /// Transition on a symbol index.
    pub fn step(&self, state: usize, symbol: usize) -> usize {
        self.next[state][symbol]
    }

    /// Runs the DFA on a word of labels.
    pub fn run(&self, word: &[Label]) -> usize {
        word.iter().fold(self.start, |s, &l| self.step(s, self.symbol_index(l)))
    }

    /// Does the DFA accept `word`?
    pub fn accepts(&self, word: &[Label]) -> bool {
        self.accept[self.run(word)]
    }

    /// The complement automaton (same alphabet, flipped acceptance; valid
    /// because the DFA is complete).
    pub fn complement(&self) -> Dfa {
        Dfa {
            alphabet: self.alphabet.clone(),
            start: self.start,
            accept: self.accept.iter().map(|&a| !a).collect(),
            next: self.next.clone(),
        }
    }

    /// Product intersection with another DFA over the same alphabet.
    ///
    /// # Panics
    /// Panics when the alphabets differ.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        assert_eq!(self.alphabet, other.alphabet, "product requires equal alphabets");
        let k = self.alphabet.len();
        let mut index = std::collections::HashMap::new();
        let mut pairs = vec![(self.start, other.start)];
        index.insert((self.start, other.start), 0usize);
        let mut next: Vec<Vec<usize>> = vec![vec![usize::MAX; k]];
        let mut work = vec![0usize];
        while let Some(s) = work.pop() {
            let (a, b) = pairs[s];
            for sym in 0..k {
                let target = (self.step(a, sym), other.step(b, sym));
                let t = match index.get(&target) {
                    Some(&t) => t,
                    None => {
                        let t = pairs.len();
                        index.insert(target, t);
                        pairs.push(target);
                        next.push(vec![usize::MAX; k]);
                        work.push(t);
                        t
                    }
                };
                next[s][sym] = t;
            }
        }
        let accept = pairs.iter().map(|&(a, b)| self.accept[a] && other.accept[b]).collect();
        Dfa { alphabet: self.alphabet.clone(), start: 0, accept, next }
    }

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        self.find_accepted_word().is_none()
    }

    /// A shortest accepted word, if any (BFS).
    pub fn find_accepted_word(&self) -> Option<Vec<Label>> {
        let n = self.state_count();
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[self.start] = true;
        queue.push_back(self.start);
        let mut hit = if self.accept[self.start] { Some(self.start) } else { None };
        while hit.is_none() {
            let Some(s) = queue.pop_front() else { break };
            for sym in 0..self.alphabet.len() {
                let t = self.step(s, sym);
                if !seen[t] {
                    seen[t] = true;
                    prev[t] = Some((s, sym));
                    if self.accept[t] {
                        hit = Some(t);
                        break;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut cur = hit?;
        let mut word = Vec::new();
        while let Some((p, sym)) = prev[cur] {
            word.push(self.alphabet[sym]);
            cur = p;
        }
        word.reverse();
        Some(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use xuc_xpath::parse;

    fn labels(names: &[&str]) -> Vec<Label> {
        names.iter().map(|n| Label::new(n)).collect()
    }

    fn dfa_of(src: &str, alphabet: &[&str]) -> Dfa {
        Nfa::from_linear_pattern(&parse(src).unwrap()).determinize(&labels(alphabet))
    }

    #[test]
    fn complement_flips_membership() {
        let d = dfa_of("/a/b", &["a", "b", "z"]);
        let c = d.complement();
        for w in [vec!["a", "b"], vec!["a"], vec!["z", "b"]] {
            let word = labels(&w);
            assert_ne!(d.accepts(&word), c.accepts(&word), "word {w:?}");
        }
    }

    #[test]
    fn intersection_is_conjunction() {
        let d1 = dfa_of("//a//c", &["a", "b", "c", "z"]);
        let d2 = dfa_of("//b//c", &["a", "b", "c", "z"]);
        let both = d1.intersect(&d2);
        assert!(both.accepts(&labels(&["a", "b", "c"])));
        assert!(both.accepts(&labels(&["b", "a", "c"])));
        assert!(!both.accepts(&labels(&["a", "c"])));
        assert!(!both.accepts(&labels(&["b", "c"])));
    }

    #[test]
    fn emptiness_and_witness() {
        let d1 = dfa_of("/a/b", &["a", "b", "z"]);
        let d2 = dfa_of("/b/a", &["a", "b", "z"]);
        assert!(d1.intersect(&d2).is_empty());
        let d3 = dfa_of("//b", &["a", "b", "z"]);
        let w = d1.intersect(&d3).find_accepted_word().unwrap();
        assert_eq!(w, labels(&["a", "b"]));
    }

    #[test]
    fn complement_of_intersection_nonempty() {
        let d = dfa_of("//a", &["a", "z"]);
        let c = d.complement();
        let w = c.find_accepted_word().unwrap();
        assert!(!d.accepts(&w));
        // Empty word is not in //a, so the witness is the empty word.
        assert!(w.is_empty());
    }

    #[test]
    fn run_is_deterministic_total() {
        let d = dfa_of("//a/*//b", &["a", "b", "z"]);
        for w in [vec![], vec!["z"], vec!["a", "z", "b"], vec!["a", "a", "b", "b"]] {
            let word = labels(&w);
            let _ = d.run(&word); // must not panic
        }
    }
}
