//! Finite-automata substrate for linear-path reasoning.
//!
//! The paper's decision procedures for the linear fragment `XP{/,//,*}`
//! (Theorems 4.3, 4.8 and 5.4) treat a linear query as a regular language
//! over label strings: a node lies in the range of a linear query iff its
//! root-to-node label path belongs to the query's language. This crate
//! provides the machinery those theorems invoke (\[19,20\] in the paper):
//!
//! * [`Nfa`] — nondeterministic automata with `label` / `any` guards and a
//!   translation from linear patterns ([`Nfa::from_linear_pattern`]),
//! * [`Dfa`] — complete deterministic automata over an explicit finite
//!   alphabet (the constraint labels plus the fresh label `z`), with
//!   complement, intersection, emptiness and witness extraction,
//! * [`ProductDfa`] — the synchronous product of many DFAs, exposing per
//!   state which component languages accept; this is the state space over
//!   which `xuc-core` runs its greatest-fixpoint implication procedure,
//! * [`PatternSetCompiler`] — set-at-a-time lowering of a whole pattern
//!   batch into one minimal tagged DFA ([`CompiledPatternSet`]), consumed
//!   by [`xuc_xpath::Evaluator::eval_set`] to label every tree node with
//!   its satisfied-pattern bitset in a single pre-order pass,
//! * [`StateSetTable`] — the ranked (multi-word) acceptance-set
//!   representation shared by [`ProductDfa`] and the compiler, lifting
//!   the old 64-component `u64` mask ceiling.

pub mod dfa;
pub mod nfa;
pub mod product;
pub mod setcompile;
pub mod stateset;

pub use dfa::Dfa;
pub use nfa::Nfa;
pub use product::{ProductDfa, ProductError};
pub use setcompile::{CompiledPatternSet, PatternSetCompiler};
pub use stateset::StateSetTable;

use xuc_xpath::Pattern;
use xuc_xtree::Label;

/// The effective alphabet for a family of linear queries: every concrete
/// label they mention plus the fresh label `z` standing for "any other
/// label" (replacing labels outside the constraint vocabulary is harmless,
/// as argued in the proof of Theorem 4.2).
pub fn effective_alphabet<'a>(queries: impl IntoIterator<Item = &'a Pattern>) -> Vec<Label> {
    let mut set: std::collections::BTreeSet<Label> = std::collections::BTreeSet::new();
    let mut patterns: Vec<&Pattern> = Vec::new();
    for q in queries {
        set.extend(q.labels());
        patterns.push(q);
    }
    let z = xuc_xpath::canonical::fresh_label_for(patterns);
    set.insert(z);
    set.into_iter().collect()
}
