//! Set-at-a-time compilation of whole pattern batches.
//!
//! The per-pattern evaluation path pays one bitset sweep per pattern per
//! tree, even when the batch shares most of its structure (constraint
//! suites routinely protect dozens of ranges over the same few spine
//! prefixes). For **linear** patterns — `XP{/,//,*}`, where membership of
//! a node depends only on its root-to-node label string — the whole batch
//! can instead be lowered into *one* automaton:
//!
//! 1. each linear pattern becomes an [`Nfa`] ([`Nfa::from_linear_pattern`]),
//! 2. the union of those NFAs is determinized by a **tagged subset
//!    construction** that records, per DFA state, the set of patterns
//!    whose accept states are present ([`StateSetTable`], the same ranked
//!    representation [`crate::ProductDfa`] uses — no 64-pattern ceiling),
//! 3. the DFA is minimized by Moore partition refinement, which is what
//!    actually pools the shared prefixes: equivalent residuals of
//!    different patterns collapse into one state.
//!
//! A single pre-order pass over a tree then labels every node with its
//! satisfied-pattern bitset row ([`xuc_xpath::Evaluator::eval_set`] runs
//! that pass over its snapshot). Patterns with predicates cannot be path
//! automata; they are carried as **fallbacks** and evaluated by the
//! per-pattern path, so a compiled batch always answers for the full
//! input slice.

use crate::nfa::{Guard, Nfa};
use crate::stateset::StateSetTable;
use std::collections::{BTreeSet, HashMap};
use xuc_xpath::{Pattern, PatternSetAutomaton};
use xuc_xtree::Label;

/// Compiles a slice of XPath patterns into one [`CompiledPatternSet`].
///
/// ```
/// use xuc_automata::PatternSetCompiler;
/// use xuc_xpath::parse;
///
/// let suite =
///     vec![parse("/a/b").unwrap(), parse("//b").unwrap(), parse("/a[/c]").unwrap()];
/// let compiled = PatternSetCompiler::compile(&suite);
/// assert_eq!(compiled.pattern_count(), 3);
/// assert_eq!(compiled.compiled_count(), 2); // the predicate pattern falls back
/// assert_eq!(compiled.fallback_count(), 1);
/// ```
pub struct PatternSetCompiler;

/// One pattern batch lowered into a minimal DFA plus per-pattern
/// fallbacks; see the [module docs](self) for the construction and
/// [`xuc_xpath::Evaluator::eval_set`] for the consumer.
#[derive(Debug, Clone)]
pub struct CompiledPatternSet {
    alphabet: Vec<Label>,
    /// Label raw id → symbol index; ids past the end (and ids of labels
    /// outside the alphabet) map to `z_sym`.
    sym_by_raw: Vec<u16>,
    z_sym: u16,
    start: u32,
    /// `next[state * alphabet.len() + symbol]`.
    next: Vec<u32>,
    /// Row `s` = batch indices of the patterns state `s` satisfies.
    accept: StateSetTable,
    /// `(batch index, pattern)` pairs the automaton does not cover.
    fallbacks: Vec<(usize, Pattern)>,
    pattern_count: usize,
}

impl PatternSetCompiler {
    /// Lowers `patterns` into one automaton. Linear patterns are compiled;
    /// patterns with predicates are kept as fallbacks. Order is preserved:
    /// bit `i` of an acceptance row (and entry `i` of every
    /// [`eval_set`](xuc_xpath::Evaluator::eval_set) result) corresponds to
    /// the `i`-th input pattern.
    pub fn compile<'a>(patterns: impl IntoIterator<Item = &'a Pattern>) -> CompiledPatternSet {
        let patterns: Vec<&Pattern> = patterns.into_iter().collect();
        let pattern_count = patterns.len();
        let mut linear: Vec<(usize, Nfa)> = Vec::new();
        let mut fallbacks: Vec<(usize, Pattern)> = Vec::new();
        for (i, q) in patterns.iter().enumerate() {
            if q.is_linear() {
                linear.push((i, Nfa::from_linear_pattern(q)));
            } else {
                fallbacks.push((i, (*q).clone()));
            }
        }
        if linear.is_empty() {
            // Trivial one-state automaton: nothing accepts, everything
            // comes from the fallback path.
            let mut accept = StateSetTable::new(pattern_count);
            accept.push_row();
            return CompiledPatternSet {
                alphabet: vec![Label::z()],
                sym_by_raw: Vec::new(),
                z_sym: 0,
                start: 0,
                next: vec![0],
                accept,
                fallbacks,
                pattern_count,
            };
        }

        // Alphabet: every label the compiled patterns mention plus the
        // fresh `z` standing for "any other label" (a tree label outside
        // the alphabet interacts with no guard a compiled pattern has, so
        // mapping it to `z` preserves every answer).
        let z = xuc_xpath::canonical::fresh_label_for(
            patterns.iter().copied().filter(|q| q.is_linear()),
        );
        let mut alpha_set: BTreeSet<Label> = BTreeSet::new();
        for (i, _) in &linear {
            alpha_set.extend(patterns[*i].labels());
        }
        alpha_set.insert(z);
        let alphabet: Vec<Label> = alpha_set.into_iter().collect();
        let alen = alphabet.len();
        let z_sym = alphabet.iter().position(|&l| l == z).expect("z inserted") as u16;
        let max_raw = alphabet.iter().map(|l| l.raw() as usize).max().expect("non-empty");
        let mut sym_by_raw = vec![z_sym; max_raw + 1];
        for (s, l) in alphabet.iter().enumerate() {
            sym_by_raw[l.raw() as usize] = s as u16;
        }

        // Global NFA state space: the disjoint union of the per-pattern
        // NFAs, with per-state successor lists and accept tags.
        let mut offsets = Vec::with_capacity(linear.len());
        let mut total = 0usize;
        for (_, nfa) in &linear {
            offsets.push(total);
            total += nfa.state_count();
        }
        let mut succ: Vec<Vec<(Guard, u32)>> = vec![Vec::new(); total];
        let mut accept_tag: Vec<Option<u32>> = vec![None; total];
        let mut starts: Vec<u32> = Vec::with_capacity(linear.len());
        for (j, (batch_idx, nfa)) in linear.iter().enumerate() {
            let off = offsets[j];
            starts.push((off + nfa.start()) as u32);
            for &(from, guard, to) in nfa.transitions() {
                succ[off + from].push((guard, (off + to) as u32));
            }
            for &a in nfa.accept_states() {
                accept_tag[off + a] = Some(*batch_idx as u32);
            }
        }
        starts.sort_unstable();

        // Tagged subset construction over the explicit alphabet. Each new
        // subset gets its `next` row up front, so rows are always
        // allocated before the state is popped from the worklist.
        let mut index: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut subsets: Vec<Vec<u32>> = vec![starts.clone()];
        index.insert(starts, 0);
        let mut next: Vec<u32> = vec![u32::MAX; alen];
        let mut seen = vec![false; total];
        let mut work = vec![0u32];
        while let Some(s) = work.pop() {
            let row_base = s as usize * alen;
            for (sym, &label) in alphabet.iter().enumerate() {
                let mut target: Vec<u32> = Vec::new();
                for &g in &subsets[s as usize] {
                    for &(guard, to) in &succ[g as usize] {
                        if guard.accepts(label) && !seen[to as usize] {
                            seen[to as usize] = true;
                            target.push(to);
                        }
                    }
                }
                for &t in &target {
                    seen[t as usize] = false;
                }
                target.sort_unstable();
                let t = match index.get(&target) {
                    Some(&t) => t,
                    None => {
                        let t = subsets.len() as u32;
                        index.insert(target.clone(), t);
                        subsets.push(target);
                        next.resize(next.len() + alen, u32::MAX);
                        work.push(t);
                        t
                    }
                };
                next[row_base + sym] = t;
            }
        }

        let mut accept = StateSetTable::new(pattern_count);
        for subset in &subsets {
            let row = accept.push_row();
            for &g in subset {
                if let Some(b) = accept_tag[g as usize] {
                    accept.insert(row, b as usize);
                }
            }
        }

        let (start, next, accept) = minimize(0, &next, &accept, alen);
        CompiledPatternSet {
            alphabet,
            sym_by_raw,
            z_sym,
            start,
            next,
            accept,
            fallbacks,
            pattern_count,
        }
    }
}

/// Moore partition refinement: initial classes by acceptance row, refined
/// by successor classes until stable. Returns the quotient automaton's
/// `(start, next, accept)`. Class ids are assigned in first-state order,
/// so the result is deterministic.
fn minimize(
    start: u32,
    next: &[u32],
    accept: &StateSetTable,
    alen: usize,
) -> (u32, Vec<u32>, StateSetTable) {
    let n = accept.len();
    let mut class: Vec<u32> = Vec::with_capacity(n);
    let mut by_row: HashMap<Vec<u64>, u32> = HashMap::new();
    for s in 0..n {
        let c = by_row.len() as u32;
        class.push(*by_row.entry(accept.row(s).to_vec()).or_insert(c));
    }
    let mut classes = by_row.len();
    loop {
        let mut key_index: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut new_class: Vec<u32> = Vec::with_capacity(n);
        for s in 0..n {
            let mut key = Vec::with_capacity(alen + 1);
            key.push(class[s]);
            for sym in 0..alen {
                key.push(class[next[s * alen + sym] as usize]);
            }
            let c = key_index.len() as u32;
            new_class.push(*key_index.entry(key).or_insert(c));
        }
        let stable = key_index.len() == classes;
        classes = key_index.len();
        class = new_class;
        if stable {
            break;
        }
    }

    // Rebuild on class representatives (the first state of each class).
    let mut rep: Vec<usize> = vec![usize::MAX; classes];
    for (s, &c) in class.iter().enumerate() {
        if rep[c as usize] == usize::MAX {
            rep[c as usize] = s;
        }
    }
    let mut min_next = vec![u32::MAX; classes * alen];
    let mut min_accept = StateSetTable::new(accept.components());
    for (c, &r) in rep.iter().enumerate() {
        for sym in 0..alen {
            min_next[c * alen + sym] = class[next[r * alen + sym] as usize];
        }
        min_accept.push_packed(accept.row(r));
    }
    (class[start as usize], min_next, min_accept)
}

impl CompiledPatternSet {
    /// Number of patterns in the batch (compiled + fallback).
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Number of patterns the automaton covers.
    pub fn compiled_count(&self) -> usize {
        self.pattern_count - self.fallbacks.len()
    }

    /// Number of patterns carried as per-pattern fallbacks.
    pub fn fallback_count(&self) -> usize {
        self.fallbacks.len()
    }

    /// Number of DFA states after minimization.
    pub fn state_count(&self) -> usize {
        self.accept.len()
    }

    /// The compiled alphabet (pattern labels plus the fresh `z`).
    pub fn alphabet(&self) -> &[Label] {
        &self.alphabet
    }

    #[inline]
    fn symbol_of(&self, label: Label) -> usize {
        let raw = label.raw() as usize;
        if raw < self.sym_by_raw.len() {
            self.sym_by_raw[raw] as usize
        } else {
            self.z_sym as usize
        }
    }

    /// Batch indices of the compiled patterns matched by `word` (a
    /// root-to-node label path, root label excluded) — the slow per-word
    /// reference for the per-node pass [`xuc_xpath::Evaluator::eval_set`]
    /// runs over whole trees.
    pub fn matches(&self, word: &[Label]) -> Vec<usize> {
        let mut s = self.start;
        for &l in word {
            s = self.next[s as usize * self.alphabet.len() + self.symbol_of(l)];
        }
        self.accept.iter_row(s as usize).collect()
    }
}

impl PatternSetAutomaton for CompiledPatternSet {
    fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    fn start_state(&self) -> u32 {
        self.start
    }

    #[inline]
    fn step(&self, state: u32, label: Label) -> u32 {
        self.next[state as usize * self.alphabet.len() + self.symbol_of(label)]
    }

    fn accept_row(&self, state: u32) -> &[u64] {
        self.accept.row(state as usize)
    }

    fn fallbacks(&self) -> &[(usize, Pattern)] {
        &self.fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_xpath::parse;

    fn labels(names: &[&str]) -> Vec<Label> {
        names.iter().map(|n| Label::new(n)).collect()
    }

    #[test]
    fn matches_agree_with_per_pattern_nfas() {
        let srcs = ["/a/b", "//b", "/a/*//b", "//a//a", "/a", "//*/b"];
        let suite: Vec<Pattern> = srcs.iter().map(|s| parse(s).unwrap()).collect();
        let compiled = PatternSetCompiler::compile(&suite);
        assert_eq!(compiled.compiled_count(), srcs.len());
        let nfas: Vec<Nfa> = suite.iter().map(Nfa::from_linear_pattern).collect();
        let alpha = labels(&["a", "b", "q"]);
        // Exhaustive words up to length 4 over a 3-letter alphabet.
        let mut words: Vec<Vec<Label>> = vec![vec![]];
        for _ in 0..4 {
            let mut next: Vec<Vec<Label>> = Vec::new();
            for w in &words {
                for &l in &alpha {
                    let mut w2 = w.clone();
                    w2.push(l);
                    next.push(w2);
                }
            }
            for w in &next {
                let got = compiled.matches(w);
                let want: Vec<usize> = (0..nfas.len()).filter(|&i| nfas[i].accepts(w)).collect();
                assert_eq!(got, want, "word {w:?}");
            }
            words = next;
        }
    }

    #[test]
    fn predicates_fall_back() {
        let suite: Vec<Pattern> =
            ["/a[/b]", "//c", "/a[/b]/d"].iter().map(|s| parse(s).unwrap()).collect();
        let compiled = PatternSetCompiler::compile(&suite);
        assert_eq!(compiled.compiled_count(), 1);
        let fallback_idxs: Vec<usize> =
            PatternSetAutomaton::fallbacks(&compiled).iter().map(|(i, _)| *i).collect();
        assert_eq!(fallback_idxs, vec![0, 2]);
        // The compiled bit is the original batch index, not a dense rank.
        assert_eq!(compiled.matches(&labels(&["c"])), vec![1]);
    }

    #[test]
    fn all_fallback_batch_compiles_to_trivial_automaton() {
        let suite: Vec<Pattern> = ["/a[/b]", "/c[/d]"].iter().map(|s| parse(s).unwrap()).collect();
        let compiled = PatternSetCompiler::compile(&suite);
        assert_eq!(compiled.compiled_count(), 0);
        assert_eq!(compiled.state_count(), 1);
        assert!(compiled.matches(&labels(&["a", "b"])).is_empty());
    }

    #[test]
    fn shared_prefixes_pool_states() {
        // 32 patterns sharing one /a/b/c spine prefix: the minimized
        // automaton must stay far below the sum of per-pattern sizes.
        let suite: Vec<Pattern> =
            (0..32).map(|i| parse(&format!("/a/b/c/t{}", i % 8)).unwrap()).collect();
        let compiled = PatternSetCompiler::compile(&suite);
        let per_pattern_states: usize = suite.iter().map(|q| q.len() + 1).sum();
        assert!(
            compiled.state_count() * 4 < per_pattern_states,
            "minimization must pool shared prefixes: {} states vs {} summed",
            compiled.state_count(),
            per_pattern_states
        );
        // Duplicate tails share one accepting state but keep distinct bits.
        assert_eq!(compiled.matches(&labels(&["a", "b", "c", "t3"])), vec![3, 11, 19, 27],);
    }

    #[test]
    fn foreign_labels_behave_like_z() {
        let suite: Vec<Pattern> = ["//a/*", "/a/b"].iter().map(|s| parse(s).unwrap()).collect();
        let compiled = PatternSetCompiler::compile(&suite);
        // `weird` is not in the alphabet: the wildcard still consumes it,
        // the concrete /a/b guard still rejects it.
        assert_eq!(compiled.matches(&labels(&["a", "weird-label-outside"])), vec![0]);
        assert_eq!(compiled.matches(&labels(&["a", "b"])), vec![0, 1]);
    }

    #[test]
    fn past_64_patterns_use_ranked_rows() {
        let suite: Vec<Pattern> = (0..130).map(|i| parse(&format!("//p{i}")).unwrap()).collect();
        let compiled = PatternSetCompiler::compile(&suite);
        assert_eq!(compiled.pattern_count(), 130);
        assert_eq!(compiled.matches(&labels(&["p0", "p129"])), vec![129]);
        assert_eq!(compiled.matches(&labels(&["p64"])), vec![64]);
        // //p0 stays matched under descendant padding.
        assert_eq!(compiled.matches(&labels(&["x", "p0", "x"])), vec![]);
        assert_eq!(compiled.matches(&labels(&["x", "p0"])), vec![0]);
    }

    #[test]
    fn empty_batch() {
        let compiled = PatternSetCompiler::compile(std::iter::empty::<&Pattern>());
        assert_eq!(compiled.pattern_count(), 0);
        assert!(compiled.matches(&labels(&["a"])).is_empty());
    }
}
