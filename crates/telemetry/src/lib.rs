//! `xuc-telemetry`: deterministic-by-construction metrics and stage
//! tracing for the gateway stack.
//!
//! The serving path already has six load-bearing mechanisms (delta
//! admission, suite cache, WAL + group commit, degraded modes,
//! backpressure shedding, sharded work queues with coalescing); this
//! crate is the one place they report to. Three components:
//!
//! * [`MetricsRegistry`] — named sharded counters, gauges, and
//!   [`LatencyHistogram`]s with a canonical sorted text exposition.
//!   Every metric declares its [`Determinism`]: deterministic metrics
//!   render byte-identically at any worker count (pinned by the
//!   differential suites), scheduling-dependent ones are explicitly
//!   classified rather than quietly flaky.
//! * [`TraceRing`] + [`StageTable`] — span tracing over the shared
//!   [`Clock`] abstraction, attributing commit
//!   admission to the closed [`Stage`] taxonomy (apply → dirty-region →
//!   splice → verdict → certify → journal append → fsync). The ring is
//!   bounded and lock-free with drop counting: telemetry never blocks
//!   the hot path.
//! * [`Telemetry`] — the bundle a gateway holds: one registry, one
//!   ring, one stage table, one clock. Constructing it is cheap;
//!   attaching it must be **observationally inert** — verdict logs,
//!   trees, baselines, and certificate chains stay byte-identical with
//!   telemetry enabled (the only side effects are relaxed atomics and
//!   clock reads).

pub mod histogram;
pub mod registry;
pub mod trace;

pub use histogram::LatencyHistogram;
pub use registry::{
    Counter, Determinism, Gauge, Histo, HistogramSummary, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{Stage, StageRow, StageTable, TraceEvent, TraceRing};

use std::sync::Arc;

use xuc_core::clock::{Clock, SystemClock};

/// Default trace-ring capacity: large enough to hold every span of a
/// several-hundred-commit burst (7 stages per commit), small enough to
/// stay cache-resident.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Anything that can fold itself into a [`MetricsRegistry`] — the
/// unification trait for the ad-hoc stats structs that predate this
/// crate (`CoalesceStats`, `LoadReport`, `SearchStats`): harnesses read
/// one snapshot instead of three bespoke structs.
pub trait RecordInto {
    fn record_into(&self, reg: &MetricsRegistry);
}

/// The counterexample search's stats fold in here (the impl lives in
/// this crate because `xuc-core` sits *below* telemetry in the
/// dependency graph). `evaluated` is deterministic — the sharded search
/// fixes global candidate indexing — and `winner_index` is reported as
/// a gauge (`-1` when no counterexample was found).
impl RecordInto for xuc_core::implication::search::SearchStats {
    fn record_into(&self, reg: &MetricsRegistry) {
        reg.counter("xuc_search_candidates_evaluated_total", Determinism::Deterministic)
            .add(self.evaluated);
        reg.gauge("xuc_search_winner_index", Determinism::Deterministic)
            .set(self.winner_index.map(|w| w as i64).unwrap_or(-1));
    }
}

/// The instrument bundle a gateway (or harness) owns: one registry, one
/// stage table, one trace ring, one clock. Shared via `Arc`; every
/// operation on it is lock-free or takes a short leaf mutex, and none
/// of them can observe or influence admission decisions.
pub struct Telemetry {
    registry: MetricsRegistry,
    stages: StageTable,
    ring: TraceRing,
    clock: Box<dyn Clock + Send + Sync>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Production configuration: system clock, default ring capacity.
    pub fn new() -> Telemetry {
        Telemetry::with_clock(Box::new(SystemClock), DEFAULT_RING_CAPACITY)
    }

    /// Injectable configuration — tests pass an
    /// `Arc<VirtualClock>` (boxed) to drive span timings
    /// deterministically, and a small ring to exercise overflow.
    pub fn with_clock(clock: Box<dyn Clock + Send + Sync>, ring_capacity: usize) -> Telemetry {
        Telemetry {
            registry: MetricsRegistry::new(),
            stages: StageTable::new(),
            ring: TraceRing::new(ring_capacity),
            clock,
        }
    }

    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    pub fn stages(&self) -> &StageTable {
        &self.stages
    }

    /// The clock's current reading — capture before a stage, hand back
    /// to [`record_stage`](Telemetry::record_stage) after.
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// Closes a span opened at `started_micros`: accumulates it in the
    /// stage table and appends it to the trace ring. Two atomic adds
    /// plus one ring store — never blocks.
    pub fn record_stage(&self, stage: Stage, tag: u16, started_micros: u64) {
        let micros = self.clock.now_micros().saturating_sub(started_micros);
        self.record_span(stage, tag, micros);
    }

    /// Records a span whose length the caller already computed — the
    /// primitive under [`record_stage`](Telemetry::record_stage) and
    /// [`time`](Telemetry::time), exposed so *adjacent* stages can
    /// split on a single shared clock reading: the tracer's dominant
    /// hot-path cost is the clock read, not the atomics, so pipelined
    /// stages (apply → dirty-accumulate, splice → verdict) close one
    /// span and open the next from the same `now_micros` value.
    pub fn record_span(&self, stage: Stage, tag: u16, micros: u64) {
        self.stages.record(stage, micros);
        self.ring.record(stage, tag, micros);
    }

    /// Times `f` as one `stage` span. The `Option<&Telemetry>` shape
    /// means call sites pay nothing when telemetry is detached.
    pub fn time<R>(tel: Option<&Telemetry>, stage: Stage, tag: u16, f: impl FnOnce() -> R) -> R {
        match tel {
            None => f(),
            Some(t) => {
                let t0 = t.now_micros();
                let r = f();
                t.record_stage(stage, tag, t0);
                r
            }
        }
    }

    /// Renders the per-stage attribution table: name, span count, total
    /// microseconds, and share of all attributed time. Fixed shape
    /// (every stage, pipeline order), so harnesses print it directly.
    pub fn stage_breakdown(&self) -> String {
        use std::fmt::Write as _;
        let rows = self.stages.rows();
        let total = self.stages.total_micros().max(1);
        let mut out = String::new();
        let _ = writeln!(out, "{:<18} {:>10} {:>14} {:>7}", "stage", "spans", "total_us", "share");
        for r in rows {
            let _ = writeln!(
                out,
                "{:<18} {:>10} {:>14} {:>6.1}%",
                r.stage.name(),
                r.count,
                r.total_micros,
                100.0 * r.total_micros as f64 / total as f64
            );
        }
        let _ =
            writeln!(out, "ring: {} spans held, {} dropped", self.ring.len(), self.ring.dropped());
        out
    }
}

/// `Telemetry` behind an `Arc` — the shape every instrumented component
/// stores.
pub type SharedTelemetry = Arc<Telemetry>;

#[cfg(test)]
mod tests {
    use super::*;
    use xuc_core::clock::VirtualClock;

    fn virtual_telemetry(ring: usize) -> (Arc<VirtualClock>, Telemetry) {
        let clock = Arc::new(VirtualClock::new());
        let tel = Telemetry::with_clock(Box::new(clock.clone()), ring);
        (clock, tel)
    }

    #[test]
    fn record_stage_measures_virtual_time() {
        let (clock, tel) = virtual_telemetry(16);
        let t0 = tel.now_micros();
        clock.advance_micros(120);
        tel.record_stage(Stage::Splice, 3, t0);
        let rows = tel.stages().rows();
        assert_eq!(rows[Stage::Splice as usize].total_micros, 120);
        let events = tel.ring().events();
        assert_eq!(events, vec![TraceEvent { stage: Stage::Splice, tag: 3, micros: 120 }]);
    }

    #[test]
    fn time_helper_is_a_noop_without_telemetry() {
        let out = Telemetry::time(None, Stage::Apply, 0, || 7);
        assert_eq!(out, 7);
        let (clock, tel) = virtual_telemetry(16);
        let out = Telemetry::time(Some(&tel), Stage::Apply, 9, || {
            clock.advance_micros(40);
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(tel.stages().rows()[Stage::Apply as usize].total_micros, 40);
    }

    #[test]
    fn breakdown_has_a_fixed_shape() {
        let (_clock, tel) = virtual_telemetry(8);
        let text = tel.stage_breakdown();
        for stage in Stage::ALL {
            assert!(text.contains(stage.name()), "missing {}", stage.name());
        }
        assert!(text.contains("ring: 0 spans held, 0 dropped"));
    }

    #[test]
    fn search_stats_record_into_the_registry() {
        let stats =
            xuc_core::implication::search::SearchStats { evaluated: 17, winner_index: Some(4) };
        let reg = MetricsRegistry::new();
        stats.record_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("xuc_search_candidates_evaluated_total"), Some(17));
        assert_eq!(snap.gauge("xuc_search_winner_index"), Some(4));
    }
}
