//! Stage attribution for commit admission: a fixed stage taxonomy, a
//! per-stage accumulation table, and a bounded lock-free trace ring.
//!
//! The gateway's hot path must never block on its own instruments, so
//! the ring is a fixed array of atomic slots filled by a fetch-add
//! cursor: recording is two relaxed atomic operations, and once the
//! ring is full further events increment a drop counter instead of
//! waiting or wrapping (fill-until-drained semantics — the reader
//! [`drain`](TraceRing::drain)s and the ring refills). Each event packs
//! into one `u64` — `[tag:16][stage:8][micros:40]` — so a slot write is
//! a single store; 40 bits of microseconds cover ~12 days of span
//! length, far beyond any admission stage.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The named stages of commit admission, in pipeline order. The
/// taxonomy is closed on purpose: every stage a commit can spend time
/// in has a name here, so attribution tables always sum to the whole
/// admission and stage names in expositions/experiments are stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// Applying updates to the tree, including the footprint probes a
    /// coalesced batch runs before merging.
    Apply = 0,
    /// Accumulating edit scopes into the batch's `DirtyRegion`.
    DirtyAccumulate = 1,
    /// The in-place `eval_set_splice` over cached baselines (or the
    /// full-pass `eval_set` when the splice declines).
    Splice = 2,
    /// Deriving per-constraint verdicts from the journaled net changes.
    Verdict = 3,
    /// Building the chained certificate from precomputed results.
    Certify = 4,
    /// Appending the commit record to the WAL (buffer + group commit).
    JournalAppend = 5,
    /// The WAL sync itself — the durability fsync.
    Fsync = 6,
}

impl Stage {
    pub const COUNT: usize = 7;

    /// All stages in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Apply,
        Stage::DirtyAccumulate,
        Stage::Splice,
        Stage::Verdict,
        Stage::Certify,
        Stage::JournalAppend,
        Stage::Fsync,
    ];

    /// Stable snake-case name used in expositions and BENCH series.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Apply => "apply",
            Stage::DirtyAccumulate => "dirty_accumulate",
            Stage::Splice => "splice",
            Stage::Verdict => "verdict",
            Stage::Certify => "certify",
            Stage::JournalAppend => "journal_append",
            Stage::Fsync => "fsync",
        }
    }

    fn from_u8(v: u8) -> Option<Stage> {
        Stage::ALL.get(v as usize).copied()
    }
}

/// One decoded trace event: which stage, the caller's 16-bit tag
/// (typically a document-id hash or batch sequence), and the span
/// length in microseconds (saturated at 40 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub stage: Stage,
    pub tag: u16,
    pub micros: u64,
}

const MICROS_BITS: u64 = 40;
const MICROS_MASK: u64 = (1 << MICROS_BITS) - 1;

fn pack(stage: Stage, tag: u16, micros: u64) -> u64 {
    ((tag as u64) << (MICROS_BITS + 8))
        | ((stage as u8 as u64) << MICROS_BITS)
        | micros.min(MICROS_MASK)
}

fn unpack(v: u64) -> Option<TraceEvent> {
    let stage = Stage::from_u8(((v >> MICROS_BITS) & 0xff) as u8)?;
    Some(TraceEvent { stage, tag: (v >> (MICROS_BITS + 8)) as u16, micros: v & MICROS_MASK })
}

/// The bounded lock-free span ring; see the [module docs](self).
///
/// Concurrent recording is always safe and never blocks. Draining is a
/// reader-side operation: call it from a quiescent point (between
/// processing runs), not concurrently with writers — a writer that has
/// claimed a slot but not yet stored into it would be missed.
pub struct TraceRing {
    slots: Vec<AtomicU64>,
    next: AtomicUsize,
    dropped: AtomicU64,
}

impl TraceRing {
    /// `capacity` slots; each holds one packed event.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one span. Two relaxed atomics when the ring has room;
    /// one when it is full (the drop counter). Never blocks, never
    /// allocates.
    pub fn record(&self, stage: Stage, tag: u16, micros: u64) {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i < self.slots.len() {
            self.slots[i].store(pack(stage, tag, micros), Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events recorded but not stored because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.slots.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the stored events in record order without resetting.
    pub fn events(&self) -> Vec<TraceEvent> {
        (0..self.len()).filter_map(|i| unpack(self.slots[i].load(Ordering::Relaxed))).collect()
    }

    /// Takes the stored events and empties the ring (the drop counter
    /// keeps its lifetime total). Reader-side; see the type docs.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let out = self.events();
        self.next.store(0, Ordering::Relaxed);
        out
    }
}

/// Per-stage accumulation: event counts and total microseconds, indexed
/// by [`Stage`]. This is what stage-attribution breakdowns read — the
/// ring holds individual spans, the table holds their sums, and neither
/// blocks.
#[derive(Default)]
pub struct StageTable {
    counts: [AtomicU64; Stage::COUNT],
    micros: [AtomicU64; Stage::COUNT],
}

/// One row of a stage breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageRow {
    pub stage: Stage,
    pub count: u64,
    pub total_micros: u64,
}

impl StageTable {
    pub fn new() -> StageTable {
        StageTable::default()
    }

    pub fn record(&self, stage: Stage, micros: u64) {
        self.counts[stage as usize].fetch_add(1, Ordering::Relaxed);
        self.micros[stage as usize].fetch_add(micros, Ordering::Relaxed);
    }

    /// All stages in pipeline order (zero rows included, so breakdowns
    /// always have the same shape).
    pub fn rows(&self) -> Vec<StageRow> {
        Stage::ALL
            .iter()
            .map(|&s| StageRow {
                stage: s,
                count: self.counts[s as usize].load(Ordering::Relaxed),
                total_micros: self.micros[s as usize].load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Total microseconds across all stages — the denominator for
    /// attribution shares.
    pub fn total_micros(&self) -> u64 {
        self.micros.iter().map(|m| m.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_the_packing() {
        for (stage, tag, micros) in [
            (Stage::Apply, 0u16, 0u64),
            (Stage::Splice, 0xBEEF, 123_456),
            (Stage::Fsync, u16::MAX, MICROS_MASK),
        ] {
            let ev = unpack(pack(stage, tag, micros)).unwrap();
            assert_eq!(ev, TraceEvent { stage, tag, micros });
        }
        // Span lengths beyond 40 bits saturate instead of corrupting
        // the stage/tag fields.
        let ev = unpack(pack(Stage::Verdict, 7, u64::MAX)).unwrap();
        assert_eq!((ev.stage, ev.tag, ev.micros), (Stage::Verdict, 7, MICROS_MASK));
    }

    #[test]
    fn ring_fills_then_counts_drops_without_blocking() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.record(Stage::Apply, i as u16, i);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let events = ring.drain();
        assert_eq!(events.len(), 4);
        assert_eq!(events[2], TraceEvent { stage: Stage::Apply, tag: 2, micros: 2 });
        assert!(ring.is_empty());
        // Refills after a drain; the drop counter keeps its total.
        ring.record(Stage::Fsync, 1, 99);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn concurrent_recording_loses_nothing_to_races() {
        let ring = std::sync::Arc::new(TraceRing::new(1_000));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        ring.record(Stage::Splice, t as u16, i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 4000 records into 1000 slots: exactly 1000 stored, 3000
        // dropped — the fetch-add cursor never double-assigns a slot.
        assert_eq!(ring.len(), 1_000);
        assert_eq!(ring.dropped(), 3_000);
        assert_eq!(ring.events().len(), 1_000);
    }

    #[test]
    fn stage_table_accumulates_counts_and_micros() {
        let table = StageTable::new();
        table.record(Stage::Apply, 10);
        table.record(Stage::Apply, 30);
        table.record(Stage::Fsync, 5);
        let rows = table.rows();
        assert_eq!(rows.len(), Stage::COUNT, "every stage has a row");
        assert_eq!((rows[0].count, rows[0].total_micros), (2, 40));
        assert_eq!(rows[Stage::Fsync as usize].total_micros, 5);
        assert_eq!(table.total_micros(), 45);
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "apply",
                "dirty_accumulate",
                "splice",
                "verdict",
                "certify",
                "journal_append",
                "fsync"
            ]
        );
    }
}
