//! An HDR-style log-linear latency histogram — the workspace's shared
//! histogram type.
//!
//! Born in `xuc-bench` for the open-loop load harness and promoted here
//! when the metrics registry became its second customer (`xuc_bench`
//! re-exports it, so bench-side imports are unchanged). Values
//! (virtual-time ticks or microseconds) are binned into power-of-two
//! groups, each split into `2^SUB_BITS = 32` linear sub-buckets, so
//! every recorded value lands in a bucket whose width is at most `1/32`
//! of its magnitude: any reported quantile is within ~3.1% relative
//! error of the exact order statistic (values below 32 are exact).
//! Recording is O(1), memory is a fixed ~2k-counter table regardless of
//! range, and histograms [`merge`](LatencyHistogram::merge) by plain
//! counter addition — which makes merging associative and commutative by
//! construction (the unit tests pin both against a sorted-vector
//! oracle).

/// Sub-bucket resolution: 2^5 = 32 linear buckets per power of two.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count for the full `u64` range: the exact region `[0, 32)`
/// plus `(64 - SUB_BITS)` groups of 32 sub-buckets.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// A fixed-size log-linear histogram; see the [module docs](self).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram { counts: vec![0; BUCKETS], total: 0 }
    }

    fn index(value: u64) -> usize {
        if value < SUB {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros() as u64; // ≥ SUB_BITS
        let group = exp - SUB_BITS as u64;
        let sub = (value >> group) - SUB; // 0..SUB
        ((group + 1) * SUB + sub) as usize
    }

    /// The midpoint of bucket `i` — the value quantiles report. Within
    /// `1/64` of every value the bucket holds (exact below 32).
    fn midpoint(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB {
            return i;
        }
        let group = i / SUB - 1;
        let low = (SUB + i % SUB) << group;
        low + ((1u64 << group) >> 1)
    }

    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    pub fn record_n(&mut self, value: u64, n: u64) {
        self.counts[Self::index(value)] += n;
        self.total += n;
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    /// The value at quantile `q ∈ [0, 1]` (0 on an empty histogram):
    /// the midpoint of the bucket holding the `⌈q·n⌉`-th smallest
    /// recorded value, so within ~3.1% relative error of the exact order
    /// statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::midpoint(i);
            }
        }
        unreachable!("rank {rank} ≤ total {} must land in a bucket", self.total)
    }

    /// Counter-wise addition: `a.merge(b)` holds every value either
    /// histogram recorded. Plain addition makes merging associative and
    /// commutative, so shard-local histograms fold in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Worst-case relative error of a bucket midpoint: half a bucket
    /// width over the bucket's low edge, `(2^(g-1)) / (32 · 2^g) = 1/64`
    /// — asserted with integer-rounding slack at `1/32`.
    const MAX_REL_ERROR: f64 = 1.0 / 32.0;

    fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn assert_quantiles_close(values: &[u64], ctx: &str) {
        let mut hist = LatencyHistogram::new();
        let mut sorted = values.to_vec();
        for &v in values {
            hist.record(v);
        }
        sorted.sort_unstable();
        assert_eq!(hist.count(), values.len() as u64);
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = oracle_quantile(&sorted, q);
            let approx = hist.quantile(q);
            let err = (approx as f64 - exact as f64).abs();
            let bound = (exact as f64 * MAX_REL_ERROR).max(1.0);
            assert!(
                err <= bound,
                "{ctx}: q{q} approx {approx} vs exact {exact} (err {err:.1} > {bound:.1})"
            );
        }
    }

    #[test]
    fn quantiles_track_the_oracle_on_adversarial_distributions() {
        // Bimodal: a fast mode at ~10 and a slow mode three decades up —
        // the shape that breaks mean-based summaries.
        let bimodal: Vec<u64> = (0..2_000)
            .map(|i| if i % 10 == 9 { 10_000 + (i as u64 % 77) } else { 8 + i as u64 % 5 })
            .collect();
        assert_quantiles_close(&bimodal, "bimodal");

        // Heavy tail: latency ~ i^3 — the p999 sits far beyond the p50.
        let heavy: Vec<u64> = (1..3_000u64).map(|i| (i * i * i) / 1_000 + 1).collect();
        assert_quantiles_close(&heavy, "heavy-tail");

        // All-equal: every quantile must be the (exactly representable
        // or 1/32-close) common value.
        let equal = vec![4_242u64; 1_500];
        assert_quantiles_close(&equal, "all-equal");

        // Exact region: values below 32 bin exactly.
        let small: Vec<u64> = (0..640).map(|i| i as u64 % 32).collect();
        let mut hist = LatencyHistogram::new();
        for &v in &small {
            hist.record(v);
        }
        assert_eq!(hist.quantile(0.5), 15);
        assert_eq!(hist.quantile(1.0), 31);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.quantile(0.5), 0);
    }

    #[test]
    fn merge_is_associative_and_equals_pooled_recording() {
        let pools: [Vec<u64>; 3] = [
            (0..500).map(|i| 3 + i % 40).collect(),
            (0..700).map(|i| 1_000 + (i * i) % 9_000).collect(),
            vec![77; 300],
        ];
        let hist_of = |vs: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in vs {
                h.record(v);
            }
            h
        };
        let [a, b, c] = [hist_of(&pools[0]), hist_of(&pools[1]), hist_of(&pools[2])];

        // (a ⊔ b) ⊔ c ≡ a ⊔ (b ⊔ c) ≡ recording the concatenation.
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        let pooled = hist_of(&pools.concat());
        for h in [&left, &right] {
            assert_eq!(h.count(), pooled.count());
            assert_eq!(h.counts, pooled.counts, "merged counter tables must be identical");
        }
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(left.quantile(q), pooled.quantile(q));
            assert_eq!(right.quantile(q), pooled.quantile(q));
        }
    }

    #[test]
    fn buckets_cover_the_u64_range() {
        let mut hist = LatencyHistogram::new();
        for v in [0u64, 1, 31, 32, 63, 64, 1 << 20, u64::MAX / 2, u64::MAX] {
            hist.record(v); // must not panic at either extreme
            let i = LatencyHistogram::index(v);
            let mid = LatencyHistogram::midpoint(i);
            let err = mid.abs_diff(v) as f64;
            assert!(err <= (v as f64 / 32.0).max(1.0), "value {v}: midpoint {mid} too far");
        }
        assert_eq!(hist.count(), 9);
    }
}
