//! The metrics registry: named sharded counters, gauges, and latency
//! histograms with a deterministic text exposition.
//!
//! Three decisions make this registry fit a gateway whose contract is
//! *byte-identical logs at any worker count*:
//!
//! 1. **Handles, not lookups.** Instrument sites call
//!    [`MetricsRegistry::counter`] once at wiring time and keep the
//!    returned [`Counter`] handle; the hot path is a single relaxed
//!    atomic add on a thread-striped shard — no map lookup, no lock,
//!    no allocation.
//! 2. **Every metric declares its [`Determinism`].** A counter is
//!    `Deterministic` iff its final value is a pure function of the
//!    request stream (verdict counts, shed causes, splice fallbacks);
//!    it is `SchedulingDependent` if thread interleaving can move it
//!    (steal counts, queue-depth high-water marks, wall-clock
//!    histograms). [`MetricsSnapshot::exposition_deterministic`]
//!    renders only the former, which is what the worker-count
//!    byte-identity suites pin.
//! 3. **Exposition is canonical.** Prometheus-style text, keys sorted
//!    (`BTreeMap` iteration order), one stable format — so snapshots
//!    diff with `assert_eq!` in tests and across worker counts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::histogram::LatencyHistogram;

/// Whether a metric's value is a pure function of the request stream
/// (same at any worker count) or an artifact of scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Same final value at 1, 2, or 8 workers — safe to pin byte-for-
    /// byte in differential suites.
    Deterministic,
    /// Thread interleaving can move the value (steals, queue depths,
    /// wall-clock timings); excluded from the deterministic exposition.
    SchedulingDependent,
}

impl Determinism {
    fn label(self) -> &'static str {
        match self {
            Determinism::Deterministic => "deterministic",
            Determinism::SchedulingDependent => "scheduling_dependent",
        }
    }
}

/// Shards per counter: enough to keep eight workers off each other's
/// cache lines without bloating the registry.
const COUNTER_SHARDS: usize = 16;

/// A cache-line-padded atomic so neighbouring shards don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

struct CounterInner {
    shards: [PaddedU64; COUNTER_SHARDS],
    det: Determinism,
}

/// A named monotonic counter. Cheap to clone (an `Arc`); increments are
/// relaxed atomic adds striped across `COUNTER_SHARDS` (16) shards by
/// caller-supplied stripe (typically a worker index), reads sum the
/// stripes — sums are exact because counters only grow.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.add_striped(0, n);
    }

    /// Adds on stripe `stripe % COUNTER_SHARDS` — workers pass their
    /// index so concurrent increments don't contend on one line.
    pub fn add_striped(&self, stripe: usize, n: u64) {
        self.inner.shards[stripe % COUNTER_SHARDS].0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn value(&self) -> u64 {
        self.inner.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    /// Overwrites the counter with an absolute reading — how process-
    /// global counters from crates below telemetry in the dependency
    /// graph (`xuc-xpath` sweep counters, `xuc-persist` WAL counters)
    /// are scraped into the registry. Must not race concurrent `add`s;
    /// scrape sites run single-threaded at snapshot points.
    pub fn set_absolute(&self, value: u64) {
        self.inner.shards[0].0.store(value, Ordering::Relaxed);
        for s in &self.inner.shards[1..] {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

struct GaugeInner {
    value: AtomicI64,
    det: Determinism,
}

/// A named instantaneous value (queue depth, degraded-mode state).
#[derive(Clone)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.inner.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.inner.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is below — high-water marks.
    pub fn raise_to(&self, v: i64) {
        self.inner.value.fetch_max(v, Ordering::Relaxed);
    }

    pub fn value(&self) -> i64 {
        self.inner.value.load(Ordering::Relaxed)
    }
}

/// Mutex stripes per histogram: recording takes one short lock on the
/// caller's stripe; snapshots merge all stripes (merge is associative
/// and commutative, so the fold order cannot matter).
const HISTO_SHARDS: usize = 8;

struct HistoInner {
    shards: Vec<Mutex<LatencyHistogram>>,
    det: Determinism,
}

/// A named latency histogram handle.
#[derive(Clone)]
pub struct Histo {
    inner: Arc<HistoInner>,
}

impl Histo {
    pub fn record(&self, value: u64) {
        self.record_striped(0, value);
    }

    pub fn record_striped(&self, stripe: usize, value: u64) {
        self.inner.shards[stripe % HISTO_SHARDS].lock().record(value);
    }

    /// All stripes merged into one histogram.
    pub fn merged(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for s in &self.inner.shards {
            out.merge(&s.lock());
        }
        out
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histo(Histo),
}

/// The registry: a name → metric map handed out as handles. Creation
/// takes a lock; the hot path never touches the registry again.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or re-fetches) a counter. Re-registration returns the
    /// existing handle; a classification mismatch is a wiring bug and
    /// panics.
    pub fn counter(&self, name: &str, det: Determinism) -> Counter {
        let mut m = self.metrics.lock();
        match m.get(name) {
            Some(Metric::Counter(c)) => {
                assert_eq!(
                    c.inner.det, det,
                    "counter `{name}` re-registered with a different determinism class"
                );
                c.clone()
            }
            Some(_) => panic!("metric `{name}` already registered with a different type"),
            None => {
                let c =
                    Counter { inner: Arc::new(CounterInner { shards: Default::default(), det }) };
                m.insert(name.to_owned(), Metric::Counter(c.clone()));
                c
            }
        }
    }

    pub fn gauge(&self, name: &str, det: Determinism) -> Gauge {
        let mut m = self.metrics.lock();
        match m.get(name) {
            Some(Metric::Gauge(g)) => {
                assert_eq!(
                    g.inner.det, det,
                    "gauge `{name}` re-registered with a different determinism class"
                );
                g.clone()
            }
            Some(_) => panic!("metric `{name}` already registered with a different type"),
            None => {
                let g = Gauge { inner: Arc::new(GaugeInner { value: AtomicI64::new(0), det }) };
                m.insert(name.to_owned(), Metric::Gauge(g.clone()));
                g
            }
        }
    }

    pub fn histogram(&self, name: &str, det: Determinism) -> Histo {
        let mut m = self.metrics.lock();
        match m.get(name) {
            Some(Metric::Histo(h)) => {
                assert_eq!(
                    h.inner.det, det,
                    "histogram `{name}` re-registered with a different determinism class"
                );
                h.clone()
            }
            Some(_) => panic!("metric `{name}` already registered with a different type"),
            None => {
                let h = Histo {
                    inner: Arc::new(HistoInner {
                        shards: (0..HISTO_SHARDS)
                            .map(|_| Mutex::new(LatencyHistogram::new()))
                            .collect(),
                        det,
                    }),
                };
                m.insert(name.to_owned(), Metric::Histo(h.clone()));
                h
            }
        }
    }

    /// A point-in-time copy of every metric, diffable and renderable.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock();
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histos = BTreeMap::new();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    counters.insert(name.clone(), (c.value(), c.inner.det));
                }
                Metric::Gauge(g) => {
                    gauges.insert(name.clone(), (g.value(), g.inner.det));
                }
                Metric::Histo(h) => {
                    histos.insert(name.clone(), (HistogramSummary::of(&h.merged()), h.inner.det));
                }
            }
        }
        MetricsSnapshot { counters, gauges, histos }
    }
}

/// Fixed quantile summary of a histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

impl HistogramSummary {
    fn of(h: &LatencyHistogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count(),
            p50: h.quantile(0.5),
            p90: h.quantile(0.9),
            p99: h.quantile(0.99),
            max: h.quantile(1.0),
        }
    }
}

/// A point-in-time view of the registry: plain sorted maps, so tests
/// diff two snapshots or pin the rendered text directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, (u64, Determinism)>,
    gauges: BTreeMap<String, (i64, Determinism)>,
    histos: BTreeMap<String, (HistogramSummary, Determinism)>,
}

impl MetricsSnapshot {
    /// The counter's value, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(|(v, _)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).map(|(v, _)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histos.get(name).map(|(h, _)| h)
    }

    /// Counter deltas since `base` (names missing from `base` count
    /// from zero; gauges and histograms are not differenced — they are
    /// instantaneous). The diff is what experiment arms assert on, so
    /// registry state carried over from earlier arms cancels out.
    pub fn counters_since(&self, base: &MetricsSnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, (v, _))| {
                let before = base.counters.get(k).map(|(b, _)| *b).unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect()
    }

    /// Full Prometheus-style exposition: `# TYPE` headers, one
    /// `name{class="…"} value` line per metric (histograms render their
    /// summary as `_count`/`_p50`/`_p90`/`_p99`/`_max` series), keys
    /// sorted, trailing newline. Stable across runs for deterministic
    /// metrics; scheduling-dependent values vary but the *shape* (line
    /// set and order) does not.
    pub fn exposition(&self) -> String {
        self.render(|_| true)
    }

    /// The exposition restricted to [`Determinism::Deterministic`]
    /// metrics — byte-identical at any worker count, which is exactly
    /// what the differential suites pin.
    pub fn exposition_deterministic(&self) -> String {
        self.render(|d| d == Determinism::Deterministic)
    }

    fn render(&self, keep: impl Fn(Determinism) -> bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, (v, det)) in &self.counters {
            if !keep(*det) {
                continue;
            }
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{{class=\"{}\"}} {v}", det.label());
        }
        for (name, (v, det)) in &self.gauges {
            if !keep(*det) {
                continue;
            }
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name}{{class=\"{}\"}} {v}", det.label());
        }
        for (name, (h, det)) in &self.histos {
            if !keep(*det) {
                continue;
            }
            let _ = writeln!(out, "# TYPE {name} summary");
            let _ = writeln!(out, "{name}_count{{class=\"{}\"}} {}", det.label(), h.count);
            for (q, v) in [("p50", h.p50), ("p90", h.p90), ("p99", h.p99), ("max", h.max)] {
                let _ = writeln!(out, "{name}_{q}{{class=\"{}\"}} {v}", det.label());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_stripe_and_sum_exactly() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("xuc_test_total", Determinism::Deterministic);
        for stripe in 0..64 {
            c.add_striped(stripe, 3);
        }
        assert_eq!(c.value(), 192);
        assert_eq!(reg.snapshot().counter("xuc_test_total"), Some(192));
    }

    #[test]
    fn reregistration_returns_the_same_underlying_metric() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("xuc_shared_total", Determinism::Deterministic);
        let b = reg.counter("xuc_shared_total", Determinism::Deterministic);
        a.add(5);
        b.add(7);
        assert_eq!(a.value(), 12, "both handles hit one counter");
    }

    #[test]
    #[should_panic(expected = "different determinism class")]
    fn classification_conflicts_panic() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("xuc_conflict_total", Determinism::Deterministic);
        let _ = reg.counter("xuc_conflict_total", Determinism::SchedulingDependent);
    }

    #[test]
    fn set_absolute_overwrites_striped_state() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("xuc_scraped_total", Determinism::Deterministic);
        for stripe in 0..COUNTER_SHARDS {
            c.add_striped(stripe, 10);
        }
        c.set_absolute(42);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn exposition_is_sorted_and_filters_by_class() {
        let reg = MetricsRegistry::new();
        reg.counter("xuc_b_total", Determinism::SchedulingDependent).add(2);
        reg.counter("xuc_a_total", Determinism::Deterministic).add(1);
        reg.gauge("xuc_depth", Determinism::SchedulingDependent).set(7);
        reg.histogram("xuc_lat_micros", Determinism::SchedulingDependent).record(100);

        let snap = reg.snapshot();
        let full = snap.exposition();
        let a = full.find("xuc_a_total").unwrap();
        let b = full.find("xuc_b_total").unwrap();
        assert!(a < b, "keys sorted");
        assert!(full.contains("xuc_lat_micros_p99"));

        let det = snap.exposition_deterministic();
        assert!(det.contains("xuc_a_total{class=\"deterministic\"} 1"));
        assert!(!det.contains("xuc_b_total"), "scheduling-dependent filtered out");
        assert!(!det.contains("xuc_depth"));
    }

    #[test]
    fn counters_since_diffs_against_a_base() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("xuc_evt_total", Determinism::Deterministic);
        c.add(10);
        let base = reg.snapshot();
        c.add(32);
        let diff = reg.snapshot().counters_since(&base);
        assert_eq!(diff.get("xuc_evt_total"), Some(&32));
    }

    #[test]
    fn gauges_track_high_water_marks() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("xuc_hwm", Determinism::SchedulingDependent);
        g.raise_to(5);
        g.raise_to(3);
        assert_eq!(g.value(), 5);
    }
}
