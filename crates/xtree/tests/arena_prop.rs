//! Differential property tests: the struct-of-arrays arena [`DataTree`]
//! against an executable specification of the historical
//! `Vec<Option<NodeData>>` representation (per-node child `Vec`s, slots
//! never reused). Over random edit sequences both must agree on render
//! output (child order included), pre-order snapshots, parent/child
//! queries and error outcomes — while the arena additionally keeps its
//! slot capacity bounded by the peak live count, which the historical
//! representation could not.

use proptest::prelude::*;
use xuc_xtree::{apply_undoable, apply_update, undo, DataTree, Label, NodeId, Update};

const LABELS: &[&str] = &["a", "b", "c", "d"];

/// The historical tree representation, kept as an executable spec.
struct ModelNode {
    id: NodeId,
    label: Label,
    parent: Option<usize>,
    children: Vec<usize>,
}

struct ModelTree {
    nodes: Vec<Option<ModelNode>>,
    root: usize,
}

impl ModelTree {
    fn new(id: NodeId, label: Label) -> Self {
        ModelTree {
            nodes: vec![Some(ModelNode { id, label, parent: None, children: Vec::new() })],
            root: 0,
        }
    }

    fn slot(&self, id: NodeId) -> Option<usize> {
        self.nodes.iter().position(|n| n.as_ref().is_some_and(|n| n.id == id))
    }

    fn get(&self, slot: usize) -> &ModelNode {
        self.nodes[slot].as_ref().expect("live slot")
    }

    fn get_mut(&mut self, slot: usize) -> &mut ModelNode {
        self.nodes[slot].as_mut().expect("live slot")
    }

    fn add_with_id(&mut self, parent: NodeId, id: NodeId, label: Label) -> bool {
        let Some(parent_slot) = self.slot(parent) else { return false };
        if self.slot(id).is_some() {
            return false;
        }
        let slot = self.nodes.len();
        self.nodes.push(Some(ModelNode { id, label, parent: Some(parent_slot), children: vec![] }));
        self.get_mut(parent_slot).children.push(slot);
        true
    }

    fn relabel(&mut self, id: NodeId, label: Label) -> bool {
        match self.slot(id) {
            Some(s) => {
                self.get_mut(s).label = label;
                true
            }
            None => false,
        }
    }

    fn replace_id(&mut self, id: NodeId, new_id: NodeId) -> bool {
        let Some(slot) = self.slot(id) else { return false };
        if self.slot(new_id).is_some() {
            return false;
        }
        self.get_mut(slot).id = new_id;
        true
    }

    fn reap(&mut self, slot: usize) {
        let children = std::mem::take(&mut self.get_mut(slot).children);
        for c in children {
            self.reap(c);
        }
        self.nodes[slot] = None; // the historical permanent hole
    }

    fn delete_subtree(&mut self, id: NodeId) -> bool {
        let Some(slot) = self.slot(id) else { return false };
        let Some(parent) = self.get(slot).parent else { return false };
        self.get_mut(parent).children.retain(|&c| c != slot);
        self.reap(slot);
        true
    }

    fn delete_node(&mut self, id: NodeId) -> bool {
        let Some(slot) = self.slot(id) else { return false };
        let Some(parent) = self.get(slot).parent else { return false };
        let children = std::mem::take(&mut self.get_mut(slot).children);
        for &c in &children {
            self.get_mut(c).parent = Some(parent);
        }
        self.get_mut(parent).children.retain(|&c| c != slot);
        self.get_mut(parent).children.extend(children);
        self.nodes[slot] = None;
        true
    }

    fn move_node(&mut self, id: NodeId, new_parent: NodeId) -> bool {
        let (Some(slot), Some(target)) = (self.slot(id), self.slot(new_parent)) else {
            return false;
        };
        let Some(old_parent) = self.get(slot).parent else { return false };
        let mut cursor = Some(target);
        while let Some(s) = cursor {
            if s == slot {
                return false;
            }
            cursor = self.get(s).parent;
        }
        self.get_mut(old_parent).children.retain(|&c| c != slot);
        self.get_mut(target).children.push(slot);
        self.get_mut(slot).parent = Some(target);
        true
    }

    fn apply(&mut self, op: &Update) -> bool {
        match op {
            Update::InsertLeaf { parent, id, label } => self.add_with_id(*parent, *id, *label),
            Update::DeleteSubtree { node } => self.delete_subtree(*node),
            Update::DeleteNode { node } => self.delete_node(*node),
            Update::Move { node, new_parent } => self.move_node(*node, *new_parent),
            Update::Relabel { node, label } => self.relabel(*node, *label),
            Update::ReplaceId { node, new_id } => self.replace_id(*node, *new_id),
        }
    }

    fn len(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    fn render(&self) -> String {
        fn rec(t: &ModelTree, slot: usize, depth: usize, out: &mut String) {
            let d = t.get(slot);
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&format!("{} [{}]\n", d.label, d.id));
            for &c in &d.children {
                rec(t, c, depth + 1, out);
            }
        }
        let mut s = String::new();
        rec(self, self.root, 0, &mut s);
        s
    }

    fn preorder(&self) -> Vec<(NodeId, Label, Option<usize>)> {
        fn rec(
            t: &ModelTree,
            slot: usize,
            parent_index: Option<usize>,
            out: &mut Vec<(NodeId, Label, Option<usize>)>,
        ) {
            let d = t.get(slot);
            let my_index = out.len();
            out.push((d.id, d.label, parent_index));
            for &c in &d.children {
                rec(t, c, Some(my_index), out);
            }
        }
        let mut out = Vec::new();
        rec(self, self.root, None, &mut out);
        out
    }

    fn parent_of(&self, id: NodeId) -> Option<NodeId> {
        let slot = self.slot(id).expect("live");
        self.get(slot).parent.map(|p| self.get(p).id)
    }

    fn children_of(&self, id: NodeId) -> Vec<NodeId> {
        let slot = self.slot(id).expect("live");
        self.get(slot).children.iter().map(|&c| self.get(c).id).collect()
    }
}

fn op_strategy() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (0..6usize, 0..64usize, 0..64usize, 0..LABELS.len())
}

/// Resolve an op description against the current tree (both trees see the
/// same live ids, so the resolution is shared).
fn resolve_op(work: &DataTree, choice: (usize, usize, usize, usize), fresh: NodeId) -> Update {
    let (op_choice, pick_a, pick_b, l) = choice;
    let ids = work.node_ids();
    let target = if ids.len() > 1 { ids[1 + pick_a % (ids.len() - 1)] } else { ids[0] };
    let other = ids[pick_b % ids.len()];
    let label = Label::new(LABELS[l]);
    match op_choice {
        0 => Update::Relabel { node: target, label },
        1 => Update::DeleteSubtree { node: target },
        2 => Update::DeleteNode { node: target },
        3 => Update::Move { node: target, new_parent: other },
        4 => Update::InsertLeaf { parent: other, id: fresh, label },
        _ => Update::ReplaceId { node: target, new_id: fresh },
    }
}

proptest! {
    /// Arena ≡ historical model over random edit sequences: same render
    /// (child order included), same pre-order triples, same parent/child
    /// answers, same success/failure per op — and the arena's capacity
    /// stays bounded by peak live while the model's grows monotonically.
    #[test]
    fn arena_matches_historical_model(
        seed_parents in proptest::collection::vec(0..8usize, 0..8),
        ops in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        let mut work = DataTree::new("root");
        let mut model = ModelTree::new(work.root_id(), Label::new("root"));
        let mut ids = vec![work.root_id()];
        for (i, p) in seed_parents.iter().enumerate() {
            let parent = ids[*p % ids.len()];
            let id = work.add(parent, LABELS[i % LABELS.len()]).unwrap();
            assert!(model.add_with_id(parent, id, Label::new(LABELS[i % LABELS.len()])));
            ids.push(id);
        }
        let mut peak_live = work.len();
        for choice in ops {
            let op = resolve_op(&work, choice, NodeId::fresh());
            let arena_ok = apply_update(&mut work, &op).is_ok();
            let model_ok = model.apply(&op);
            prop_assert_eq!(arena_ok, model_ok, "success parity for {}", &op);
            peak_live = peak_live.max(work.len());

            prop_assert_eq!(work.len(), model.len());
            prop_assert_eq!(work.render(), model.render(), "render after {}", &op);
            prop_assert_eq!(work.preorder_snapshot(), model.preorder(), "preorder after {}", &op);
            for id in work.node_ids() {
                prop_assert_eq!(work.parent(id).unwrap(), model.parent_of(id));
                prop_assert_eq!(work.children(id).unwrap(), model.children_of(id));
                let via_iter: Vec<NodeId> = work.children_iter(id).unwrap().collect();
                prop_assert_eq!(via_iter, model.children_of(id));
            }
            prop_assert!(
                work.slot_capacity() <= peak_live,
                "arena capacity {} leaked past peak live {}",
                work.slot_capacity(),
                peak_live
            );
        }
    }

    /// Undo round-trips on the arena are exact inverses (render-identical,
    /// not just isomorphic) across random LIFO stacks of edits, and leave
    /// no capacity growth behind beyond the edits' own peak.
    #[test]
    fn arena_undo_round_trips_exactly(
        seed_parents in proptest::collection::vec(0..8usize, 0..8),
        ops in proptest::collection::vec(op_strategy(), 1..16),
    ) {
        let mut work = DataTree::new("root");
        let mut ids = vec![work.root_id()];
        for (i, p) in seed_parents.iter().enumerate() {
            ids.push(work.add(ids[*p % ids.len()], LABELS[i % LABELS.len()]).unwrap());
        }
        let seed_render = work.render();
        let seed_snapshot = work.preorder_snapshot();
        let mut stack = Vec::new();
        for choice in ops {
            let op = resolve_op(&work, choice, NodeId::fresh());
            if let Ok((token, _scope)) = apply_undoable(&mut work, &op) {
                stack.push(token);
            }
        }
        while let Some(token) = stack.pop() {
            undo(&mut work, token).unwrap();
        }
        prop_assert_eq!(work.render(), seed_render);
        prop_assert_eq!(work.preorder_snapshot(), seed_snapshot);
    }
}
