//! Million-node arena lane: the churn-leak regression and the iterative
//! traversals at headline document scale.
//!
//! `XUC_SMOKE` (and debug builds) scale the document down so the default
//! `cargo test` lane stays fast; CI runs this lane smoke-scaled in
//! release mode, and a plain `cargo test --release -p xuc-xtree` on a
//! developer machine exercises the full 10^6 nodes.

use xuc_xtree::DataTree;

/// Tiny deterministic LCG so the lane needs no dev-dependencies.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn scale() -> usize {
    let smoke = std::env::var("XUC_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    if smoke || cfg!(debug_assertions) {
        60_000
    } else {
        1_000_000
    }
}

/// A hospital-shaped document of at least `n` nodes; returns the patient
/// ids so tests can churn realistic subtrees.
fn build(n: usize) -> (DataTree, Vec<xuc_xtree::NodeId>) {
    let mut rng = Lcg(0x5eed_e317);
    let mut t = DataTree::new("hospital");
    let root = t.root_id();
    let mut patients = Vec::new();
    while t.len() < n {
        let p = t.add(root, "patient").expect("fresh");
        patients.push(p);
        for _ in 0..rng.next() % 4 {
            let v = t.add(p, "visit").expect("fresh");
            if rng.next() % 10 < 3 {
                t.add(v, "report").expect("fresh");
            }
        }
        if rng.next() % 10 < 2 {
            t.add(p, "phone").expect("fresh");
        }
    }
    (t, patients)
}

/// The headline regression: a document at full scale survives sustained
/// insert+delete churn and a bulk delete/reinsert wave without its slot
/// capacity ever exceeding the peak live count.
#[test]
fn million_node_churn_keeps_capacity_bounded() {
    let n = scale();
    let (mut t, patients) = build(n);
    assert!(t.len() >= n);
    assert_eq!(t.slot_capacity(), t.len(), "a freshly built arena is dense");

    let mut buf = Vec::new();
    t.preorder_snapshot_into(&mut buf);
    assert_eq!(buf.len(), t.len());

    // 10k cycles of a 4-node patient subtree: the free list must hand the
    // same four slots back every cycle.
    let peak = t.len() + 4;
    let root = t.root_id();
    for _ in 0..10_000 {
        let p = t.add(root, "patient").unwrap();
        let v = t.add(p, "visit").unwrap();
        t.add(v, "report").unwrap();
        t.add(p, "phone").unwrap();
        t.delete_subtree(p).unwrap();
    }
    assert!(
        t.slot_capacity() <= peak,
        "churn leaked slots: capacity {} exceeds peak live {}",
        t.slot_capacity(),
        peak
    );

    // Bulk wave: drop half the patients, refill the same node mass; every
    // insert must come off the free list.
    let cap_before = t.slot_capacity();
    let live_before = t.len();
    for &p in &patients[..patients.len() / 2] {
        t.delete_subtree(p).unwrap();
    }
    let deleted = live_before - t.len();
    assert!(t.free_slots() >= deleted);
    for _ in 0..deleted {
        t.add(root, "note").unwrap();
    }
    assert_eq!(t.len(), live_before);
    assert!(
        t.slot_capacity() <= cap_before,
        "bulk delete + reinsert must reuse free-listed slots, not allocate"
    );

    // The snapshot walk still visits exactly the live nodes, in order.
    t.preorder_snapshot_into(&mut buf);
    assert_eq!(buf.len(), t.len());
    assert_eq!(buf[0].0, t.root_id());
}

/// Traversals stay iterative at pathological depth: a chain half the
/// document scale deep would overflow any recursive walk's stack.
#[test]
fn deep_chain_traversals_scale() {
    let depth = scale() / 2;
    let mut t = DataTree::new("d");
    let mut cur = t.root_id();
    for _ in 1..depth {
        cur = t.add(cur, "d").unwrap();
    }
    assert_eq!(t.len(), depth);
    assert_eq!(t.height(), depth - 1);
    let snap = t.preorder_snapshot();
    assert_eq!(snap.len(), depth);
    assert_eq!(snap.last().unwrap().2, Some(depth - 2));

    let first = t.children(t.root_id()).unwrap()[0];
    t.delete_subtree(first).unwrap();
    assert_eq!(t.len(), 1);
    assert_eq!(t.free_slots(), depth - 1);
}
