//! Session-level accumulation of [`EditScope`]s into a dirty region.
//!
//! A transactional update batch applies several edits before its single
//! admission check. Each edit reports an [`EditScope`], but the admission
//! pass does not want a *sequence* of scopes — it wants the **union**: the
//! smallest description of everything the batch may have changed, against
//! which a delta evaluation pass can re-derive answers (and against which
//! an in-place splice can patch cached result sets). [`DirtyRegion`] is
//! that union, maintained incrementally as edits are recorded:
//!
//! * structural scopes collapse to a set of **disjoint dirty subtree
//!   roots**: a newly recorded root absorbs every recorded root inside
//!   its subtree, and is itself dropped when an already-recorded root
//!   covers it — so the region never holds nested or duplicate subtrees;
//! * relabel scopes stay **pinpoint** `(node, original label)` entries,
//!   so a batch of scattered relabels does not LCA-merge into one huge
//!   structural subtree. (Consumers evaluating *root-anchored* linear
//!   patterns must still treat the relabeled node's whole subtree as
//!   dirty — every descendant's label path runs through it — but the
//!   region keeps the precise node so that cost stays proportional to
//!   that subtree.) The recorded label is the node's **pre-batch** label:
//!   the first relabel of a node wins, later relabels of the same node
//!   change nothing, and entries survive even when a structural root
//!   covers them — splice consumers need the label history of every node
//!   inside a dirty subtree, not just the uncovered ones;
//! * id-swap scopes stay pinpoint as `(from, to, original label)` patches,
//!   with swap *chains* compressed on the fly (`a→b` then `b→c` records
//!   as `a→c`; a swap-back `a→b`, `b→a` cancels out), so a patch always
//!   maps a pre-batch id (under its pre-batch label) to a live post-batch
//!   id. A relabel entry follows its node across swaps;
//! * deletions are recorded as **removed refs** — the deleted nodes under
//!   their pre-batch ids and labels
//!   ([`DirtyRegion::record_removals`], fed by the session *before* it
//!   applies a deletion, proportionally to the deleted subtree) — so a
//!   splice consumer can evict exactly the vanished entries from cached
//!   sets without scanning them;
//! * a structural scope with an *unknown* root poisons the region
//!   ([`is_full`](DirtyRegion::is_full)): the whole tree must be treated
//!   as dirty and delta consumers fall back to their full pass.
//!
//! The ancestor checks run against the tree **as it stands when the scope
//! is recorded** — call [`record`](DirtyRegion::record) immediately after
//! each [`apply_undoable`](crate::apply_undoable) (or
//! [`undo`](crate::undo)), with the scope it returned. Recorded structural
//! roots are then stable: any later edit that detaches or deletes a
//! recorded root reports a scope rooted at an ancestor, which absorbs it,
//! so the final roots are always live in the final tree.

use crate::node::NodeId;
use crate::tree::{DataTree, NodeRef};
use crate::update::EditScope;
use crate::Label;

/// One pinpoint id replacement surviving in the region: the node known to
/// the pre-batch world as `(from, label)` — `label` is its **pre-batch**
/// label — is `to` in the post-batch tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdSwap {
    pub from: NodeId,
    pub to: NodeId,
    pub label: Label,
}

/// The union of a batch of [`EditScope`]s: disjoint structural subtree
/// roots, pinpoint relabels with original labels, chain-compressed id
/// swaps, and removed refs. See the [module docs](self) for the algebra
/// and `xuc_xpath`'s `Evaluator::eval_set_delta` /
/// `Evaluator::eval_set_splice` for the principal consumers.
#[derive(Debug, Clone, Default)]
pub struct DirtyRegion {
    /// Roots of disjoint structural dirty subtrees (no recorded root is an
    /// ancestor of another).
    roots: Vec<NodeId>,
    /// `(node, pre-batch label)` for every relabeled node (first relabel
    /// wins; entries follow their node across id swaps).
    relabels: Vec<(NodeId, Label)>,
    /// Live pinpoint id swaps (chains compressed, self-swaps dropped).
    swaps: Vec<IdSwap>,
    /// Refs deleted from the tree, under their pre-batch ids and labels.
    removed: Vec<NodeRef>,
    /// An unknown-root structural scope was recorded: everything may have
    /// changed.
    full: bool,
}

impl DirtyRegion {
    /// An empty (clean) region.
    pub fn new() -> DirtyRegion {
        DirtyRegion::default()
    }

    /// Has nothing been recorded (or everything recorded been reset)?
    pub fn is_clean(&self) -> bool {
        !self.full
            && self.roots.is_empty()
            && self.relabels.is_empty()
            && self.swaps.is_empty()
            && self.removed.is_empty()
    }

    /// Must the whole tree be treated as dirty?
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// The disjoint structural dirty subtree roots.
    pub fn structural_roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Every recorded relabel as `(node, pre-batch label)` — including
    /// nodes that a structural root has since covered (their label
    /// history is still needed) and nodes that have since been deleted
    /// (cross-check [`removed`](Self::removed)).
    pub fn relabels(&self) -> &[(NodeId, Label)] {
        &self.relabels
    }

    /// The pre-batch label of `node`, if a relabel was recorded for it.
    pub fn original_label(&self, node: NodeId) -> Option<Label> {
        self.relabels.iter().find(|(n, _)| *n == node).map(|(_, l)| *l)
    }

    /// The surviving pinpoint id swaps, in record order.
    pub fn id_swaps(&self) -> &[IdSwap] {
        &self.swaps
    }

    /// Refs deleted from the tree this batch, under their pre-batch ids
    /// and labels.
    pub fn removed(&self) -> &[NodeRef] {
        &self.removed
    }

    /// Resets the region to clean — what a rollback does after unwinding
    /// its batch (the tree is back to the committed state, so nothing is
    /// dirty).
    pub fn clear(&mut self) {
        self.roots.clear();
        self.relabels.clear();
        self.swaps.clear();
        self.removed.clear();
        self.full = false;
    }

    /// Is `node` inside the subtree of a recorded structural root
    /// (inclusive)?
    fn covered(&self, tree: &DataTree, node: NodeId) -> bool {
        self.roots.iter().any(|&r| r == node || tree.is_proper_ancestor(r, node).unwrap_or(false))
    }

    /// Folds one more scope into the region. `tree` must be the tree the
    /// scope describes — i.e. call this right after the
    /// [`apply_undoable`](crate::apply_undoable)/[`undo`](crate::undo)
    /// that produced `scope`, before any further edit.
    pub fn record(&mut self, tree: &DataTree, scope: &EditScope) {
        if self.full {
            return;
        }
        match scope {
            EditScope::Relabel { node, from, .. } => {
                // First relabel wins: `from` is then the pre-batch label.
                if !self.relabels.iter().any(|(n, _)| n == node) {
                    self.relabels.push((*node, *from));
                }
            }
            EditScope::ReplaceId { from, to } => {
                // The patch must name the node's PRE-BATCH label, so cached
                // `(from, label)` entries can be located; look it up before
                // migrating the relabel entry to the new id.
                let label = self
                    .original_label(*from)
                    .unwrap_or_else(|| tree.label(*to).expect("swap target is live"));
                if let Some(entry) = self.relabels.iter_mut().find(|(n, _)| n == from) {
                    entry.0 = *to;
                }
                if let Some(chain) = self.swaps.iter_mut().find(|s| s.to == *from) {
                    // a→from already recorded: compress to a→to, keeping the
                    // chain start's pre-batch label.
                    chain.to = *to;
                    if chain.from == chain.to {
                        // Swapped all the way back: the patch is a no-op.
                        let from = chain.from;
                        self.swaps.retain(|s| s.from != from);
                    }
                } else {
                    self.swaps.push(IdSwap { from: *from, to: *to, label });
                }
            }
            EditScope::Structural { root: Some(r) } => {
                if self.covered(tree, *r) {
                    return;
                }
                // The new root absorbs every root inside its subtree (a
                // dead old root — its subtree just deleted — is absorbed
                // too: the ancestor check errs on its missing node).
                self.roots.retain(|&old| {
                    !(old == *r || tree.is_proper_ancestor(*r, old).unwrap_or(true))
                });
                self.roots.push(*r);
            }
            EditScope::Structural { root: None } => {
                self.full = true;
                self.roots.clear();
                self.relabels.clear();
                self.swaps.clear();
                self.removed.clear();
            }
        }
    }

    /// Records the refs a deletion is about to remove (their labels as of
    /// deletion time) — the session enumerates the doomed subtree
    /// *before* applying the deletion (cost proportional to the subtree,
    /// like the deletion itself). Labels are rewritten to pre-batch labels
    /// through the relabel history; nodes whose id arrived via a swap are
    /// left to the swap patch (its chain already names the pre-batch ref).
    pub fn record_removals(&mut self, refs: &[NodeRef]) {
        if self.full {
            return;
        }
        for r in refs {
            if self.swaps.iter().any(|s| s.to == r.id) {
                continue;
            }
            let label = self.original_label(r.id).unwrap_or(r.label);
            self.removed.push(NodeRef { id: r.id, label });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{apply_undoable, Update};
    use crate::{parse_term, preorder_walk_count};

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn sibling_scopes_stay_disjoint_roots() {
        let t = parse_term("r(a#1(b#2),c#3(d#4))").unwrap();
        let mut region = DirtyRegion::new();
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        region.record(&t, &EditScope::Structural { root: Some(n(3)) });
        assert_eq!(region.structural_roots(), [n(1), n(3)]);
        assert!(!region.is_full() && !region.is_clean());
    }

    #[test]
    fn ancestor_absorbs_descendant_in_both_orders() {
        let t = parse_term("r(a#1(b#2(c#3)),d#4)").unwrap();
        // Descendant first, ancestor second: the ancestor replaces it.
        let mut region = DirtyRegion::new();
        region.record(&t, &EditScope::Structural { root: Some(n(2)) });
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        assert_eq!(region.structural_roots(), [n(1)]);
        // Ancestor first: the descendant is dropped on arrival.
        let mut region = DirtyRegion::new();
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        region.record(&t, &EditScope::Structural { root: Some(n(3)) });
        assert_eq!(region.structural_roots(), [n(1)]);
        // Duplicates collapse too.
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        assert_eq!(region.structural_roots(), [n(1)]);
    }

    #[test]
    fn relabels_keep_original_labels_and_follow_swaps() {
        let mut t = parse_term("r(a#1(b#2),c#3)").unwrap();
        let mut region = DirtyRegion::new();
        let step = |t: &mut crate::DataTree, region: &mut DirtyRegion, op: Update| {
            let (_tok, scope) = apply_undoable(t, &op).unwrap();
            region.record(t, &scope);
        };
        step(&mut t, &mut region, Update::Relabel { node: n(2), label: Label::new("x") });
        step(&mut t, &mut region, Update::Relabel { node: n(2), label: Label::new("y") });
        // First relabel wins: the entry remembers the PRE-BATCH label.
        assert_eq!(region.relabels(), [(n(2), Label::new("b"))]);
        assert_eq!(region.original_label(n(2)), Some(Label::new("b")));
        // The entry follows the node across an id swap, and the swap
        // itself names the pre-batch label.
        step(&mut t, &mut region, Update::ReplaceId { node: n(2), new_id: n(20) });
        assert_eq!(region.relabels(), [(n(20), Label::new("b"))]);
        assert_eq!(region.id_swaps(), [IdSwap { from: n(2), to: n(20), label: Label::new("b") }]);
        // Entries survive a covering structural scope: splice consumers
        // need the label history of nodes inside dirty subtrees.
        step(&mut t, &mut region, Update::DeleteNode { node: n(1) });
        assert_eq!(region.structural_roots(), [t.root_id()]);
        assert_eq!(region.relabels(), [(n(20), Label::new("b"))]);
    }

    #[test]
    fn id_swap_chains_compress_and_cancel() {
        let mut t = parse_term("r(a#1,b#2)").unwrap();
        let mut region = DirtyRegion::new();
        let swap = |t: &mut crate::DataTree, region: &mut DirtyRegion, from, to| {
            let (_tok, scope) =
                apply_undoable(t, &Update::ReplaceId { node: from, new_id: to }).unwrap();
            region.record(t, &scope);
        };
        swap(&mut t, &mut region, n(1), n(10));
        swap(&mut t, &mut region, n(10), n(11));
        assert_eq!(region.id_swaps(), [IdSwap { from: n(1), to: n(11), label: Label::new("a") }]);
        // Swapping back to the original id cancels the patch entirely.
        swap(&mut t, &mut region, n(11), n(1));
        assert!(region.id_swaps().is_empty());
        assert!(region.is_clean());
        // Independent swaps coexist.
        swap(&mut t, &mut region, n(1), n(12));
        swap(&mut t, &mut region, n(2), n(13));
        assert_eq!(region.id_swaps().len(), 2);
    }

    #[test]
    fn removals_rewrite_to_pre_batch_refs() {
        let mut t = parse_term("r(a#1(b#2),c#3)").unwrap();
        let mut region = DirtyRegion::new();
        // Relabel b#2 first: its removal must surface the PRE-BATCH ref.
        let (_tok, scope) =
            apply_undoable(&mut t, &Update::Relabel { node: n(2), label: Label::new("z") })
                .unwrap();
        region.record(&t, &scope);
        let doomed = [
            NodeRef { id: n(1), label: Label::new("a") },
            NodeRef { id: n(2), label: Label::new("z") },
        ];
        region.record_removals(&doomed);
        let (_tok, scope) = apply_undoable(&mut t, &Update::DeleteSubtree { node: n(1) }).unwrap();
        region.record(&t, &scope);
        assert_eq!(
            region.removed(),
            [
                NodeRef { id: n(1), label: Label::new("a") },
                NodeRef { id: n(2), label: Label::new("b") },
            ]
        );
        // A swapped-away node's deletion is the swap patch's business.
        let mut region = DirtyRegion::new();
        let (_tok, scope) =
            apply_undoable(&mut t, &Update::ReplaceId { node: n(3), new_id: n(30) }).unwrap();
        region.record(&t, &scope);
        region.record_removals(&[NodeRef { id: n(30), label: Label::new("c") }]);
        assert!(region.removed().is_empty());
        assert_eq!(region.id_swaps().len(), 1);
    }

    #[test]
    fn unknown_root_poisons_the_region() {
        let t = parse_term("r(a#1)").unwrap();
        let mut region = DirtyRegion::new();
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        region.record(&t, &EditScope::Structural { root: None });
        assert!(region.is_full());
        assert!(region.structural_roots().is_empty());
        // Poisoned regions ignore further detail but clear back to clean.
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        region.record_removals(&[NodeRef { id: n(1), label: Label::new("a") }]);
        assert!(region.structural_roots().is_empty() && region.removed().is_empty());
        region.clear();
        assert!(region.is_clean() && !region.is_full());
    }

    #[test]
    fn rollback_reset_leaves_region_clean() {
        let t = parse_term("r(a#1(b#2))").unwrap();
        let mut region = DirtyRegion::new();
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        region.record(
            &t,
            &EditScope::Relabel { node: n(2), from: Label::new("b"), to: Label::new("c") },
        );
        region.record_removals(&[NodeRef { id: n(2), label: Label::new("c") }]);
        assert!(!region.is_clean());
        region.clear();
        assert!(region.is_clean());
        assert!(region.structural_roots().is_empty() && region.relabels().is_empty());
    }

    #[test]
    fn relabel_only_batches_record_with_zero_walks() {
        // The accumulator itself must never snapshot the tree: recording a
        // relabel-only batch performs zero pre-order walks — the property
        // the delta admission path's walk-count test leans on end to end.
        let mut t = parse_term("r(a#1(b#2),c#3)").unwrap();
        let mut region = DirtyRegion::new();
        let walks = preorder_walk_count();
        for (node, label) in [(n(1), "x"), (n(2), "y"), (n(3), "z")] {
            let (_tok, scope) =
                apply_undoable(&mut t, &Update::Relabel { node, label: Label::new(label) })
                    .unwrap();
            region.record(&t, &scope);
        }
        assert_eq!(region.relabels().len(), 3);
        assert!(region.structural_roots().is_empty());
        assert_eq!(preorder_walk_count(), walks, "recording relabels must not walk");
    }
}
