//! Session-level accumulation of [`EditScope`]s into a dirty region.
//!
//! A transactional update batch applies several edits before its single
//! admission check. Each edit reports an [`EditScope`], but the admission
//! pass does not want a *sequence* of scopes — it wants the **union**: the
//! smallest description of everything the batch may have changed, against
//! which a delta evaluation pass can re-derive answers (and against which
//! an in-place splice can patch cached result sets). [`DirtyRegion`] is
//! that union, maintained incrementally as edits are recorded:
//!
//! * structural scopes collapse to a set of **disjoint dirty subtree
//!   roots**: a newly recorded root absorbs every recorded root inside
//!   its subtree, and is itself dropped when an already-recorded root
//!   covers it — so the region never holds nested or duplicate subtrees;
//! * relabel scopes stay **pinpoint** `(node, original label)` entries,
//!   so a batch of scattered relabels does not LCA-merge into one huge
//!   structural subtree. (Consumers evaluating *root-anchored* linear
//!   patterns must still treat the relabeled node's whole subtree as
//!   dirty — every descendant's label path runs through it — but the
//!   region keeps the precise node so that cost stays proportional to
//!   that subtree.) The recorded label is the node's **pre-batch** label:
//!   the first relabel of a node wins, later relabels of the same node
//!   change nothing, and entries survive even when a structural root
//!   covers them — splice consumers need the label history of every node
//!   inside a dirty subtree, not just the uncovered ones;
//! * id-swap scopes stay pinpoint as `(from, to, original label)` patches,
//!   with swap *chains* compressed on the fly (`a→b` then `b→c` records
//!   as `a→c`; a swap-back `a→b`, `b→a` cancels out), so a patch always
//!   maps a pre-batch id (under its pre-batch label) to a live post-batch
//!   id. A relabel entry follows its node across swaps;
//! * deletions are recorded as **removed refs** — the deleted nodes under
//!   their pre-batch ids and labels
//!   ([`DirtyRegion::record_removals`], fed by the session *before* it
//!   applies a deletion, proportionally to the deleted subtree) — so a
//!   splice consumer can evict exactly the vanished entries from cached
//!   sets without scanning them;
//! * a structural scope with an *unknown* root poisons the region
//!   ([`is_full`](DirtyRegion::is_full)): the whole tree must be treated
//!   as dirty and delta consumers fall back to their full pass.
//!
//! The ancestor checks run against the tree **as it stands when the scope
//! is recorded** — call [`record`](DirtyRegion::record) immediately after
//! each [`apply_undoable`](crate::apply_undoable) (or
//! [`undo`](crate::undo)), with the scope it returned. Recorded structural
//! roots are then stable: any later edit that detaches or deletes a
//! recorded root reports a scope rooted at an ancestor, which absorbs it,
//! so the final roots are always live in the final tree.

use crate::node::NodeId;
use crate::tree::{DataTree, NodeRef};
use crate::update::EditScope;
use crate::Label;

/// One pinpoint id replacement surviving in the region: the node known to
/// the pre-batch world as `(from, label)` — `label` is its **pre-batch**
/// label — is `to` in the post-batch tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdSwap {
    pub from: NodeId,
    pub to: NodeId,
    pub label: Label,
}

/// The union of a batch of [`EditScope`]s: disjoint structural subtree
/// roots, pinpoint relabels with original labels, chain-compressed id
/// swaps, and removed refs. See the [module docs](self) for the algebra
/// and `xuc_xpath`'s `Evaluator::eval_set_delta` /
/// `Evaluator::eval_set_splice` for the principal consumers.
#[derive(Debug, Clone, Default)]
pub struct DirtyRegion {
    /// Roots of disjoint structural dirty subtrees (no recorded root is an
    /// ancestor of another).
    roots: Vec<NodeId>,
    /// `(node, pre-batch label)` for every relabeled node (first relabel
    /// wins; entries follow their node across id swaps).
    relabels: Vec<(NodeId, Label)>,
    /// Live pinpoint id swaps (chains compressed, self-swaps dropped).
    swaps: Vec<IdSwap>,
    /// Refs deleted from the tree, under their pre-batch ids and labels.
    removed: Vec<NodeRef>,
    /// An unknown-root structural scope was recorded: everything may have
    /// changed.
    full: bool,
}

impl DirtyRegion {
    /// An empty (clean) region.
    pub fn new() -> DirtyRegion {
        DirtyRegion::default()
    }

    /// Has nothing been recorded (or everything recorded been reset)?
    pub fn is_clean(&self) -> bool {
        !self.full
            && self.roots.is_empty()
            && self.relabels.is_empty()
            && self.swaps.is_empty()
            && self.removed.is_empty()
    }

    /// Must the whole tree be treated as dirty?
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// The disjoint structural dirty subtree roots.
    pub fn structural_roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Every recorded relabel as `(node, pre-batch label)` — including
    /// nodes that a structural root has since covered (their label
    /// history is still needed) and nodes that have since been deleted
    /// (cross-check [`removed`](Self::removed)).
    pub fn relabels(&self) -> &[(NodeId, Label)] {
        &self.relabels
    }

    /// The pre-batch label of `node`, if a relabel was recorded for it.
    pub fn original_label(&self, node: NodeId) -> Option<Label> {
        self.relabels.iter().find(|(n, _)| *n == node).map(|(_, l)| *l)
    }

    /// The surviving pinpoint id swaps, in record order.
    pub fn id_swaps(&self) -> &[IdSwap] {
        &self.swaps
    }

    /// Refs deleted from the tree this batch, under their pre-batch ids
    /// and labels.
    pub fn removed(&self) -> &[NodeRef] {
        &self.removed
    }

    /// Resets the region to clean — what a rollback does after unwinding
    /// its batch (the tree is back to the committed state, so nothing is
    /// dirty).
    pub fn clear(&mut self) {
        self.roots.clear();
        self.relabels.clear();
        self.swaps.clear();
        self.removed.clear();
        self.full = false;
    }

    /// Is `node` inside the subtree of a recorded structural root
    /// (inclusive)?
    fn covered(&self, tree: &DataTree, node: NodeId) -> bool {
        self.roots.iter().any(|&r| r == node || tree.is_proper_ancestor(r, node).unwrap_or(false))
    }

    /// Folds one more scope into the region. `tree` must be the tree the
    /// scope describes — i.e. call this right after the
    /// [`apply_undoable`](crate::apply_undoable)/[`undo`](crate::undo)
    /// that produced `scope`, before any further edit.
    pub fn record(&mut self, tree: &DataTree, scope: &EditScope) {
        if self.full {
            return;
        }
        match scope {
            EditScope::Relabel { node, from, .. } => {
                // First relabel wins: `from` is then the pre-batch label.
                if !self.relabels.iter().any(|(n, _)| n == node) {
                    self.relabels.push((*node, *from));
                }
            }
            EditScope::ReplaceId { from, to } => {
                // The patch must name the node's PRE-BATCH label, so cached
                // `(from, label)` entries can be located; look it up before
                // migrating the relabel entry to the new id.
                let label = self
                    .original_label(*from)
                    .unwrap_or_else(|| tree.label(*to).expect("swap target is live"));
                if let Some(entry) = self.relabels.iter_mut().find(|(n, _)| n == from) {
                    entry.0 = *to;
                }
                if let Some(chain) = self.swaps.iter_mut().find(|s| s.to == *from) {
                    // a→from already recorded: compress to a→to, keeping the
                    // chain start's pre-batch label.
                    chain.to = *to;
                    if chain.from == chain.to {
                        // Swapped all the way back: the patch is a no-op.
                        let from = chain.from;
                        self.swaps.retain(|s| s.from != from);
                    }
                } else {
                    self.swaps.push(IdSwap { from: *from, to: *to, label });
                }
            }
            EditScope::Structural { root: Some(r) } => {
                if self.covered(tree, *r) {
                    return;
                }
                // The new root absorbs every root inside its subtree (a
                // dead old root — its subtree just deleted — is absorbed
                // too: the ancestor check errs on its missing node).
                self.roots.retain(|&old| {
                    !(old == *r || tree.is_proper_ancestor(*r, old).unwrap_or(true))
                });
                self.roots.push(*r);
            }
            EditScope::Structural { root: None } => {
                self.full = true;
                self.roots.clear();
                self.relabels.clear();
                self.swaps.clear();
                self.removed.clear();
            }
        }
    }

    /// Folds `other` into this region — the union of two batches' regions,
    /// under the same algebra as [`record`](Self::record): structural roots
    /// go through the absorb/cover logic, relabels keep the **first**
    /// recorded entry per node (merge order is batch order, so the earliest
    /// batch's pre-batch label wins), id-swap chains spanning the two
    /// regions compress (`a→b` here, `b→c` there records as `a→c`), and
    /// either side's poison poisons the merge.
    ///
    /// `tree` must be the tree *after both batches applied* — the state the
    /// merged region describes. The caller is responsible for the batches
    /// being **order-independent** (see [`overlaps`](Self::overlaps)): the
    /// commit coalescer only merges regions whose edits touch disjoint
    /// parts of the tree, which is also what keeps every recorded root
    /// live in the final tree.
    pub fn merge(&mut self, tree: &DataTree, other: &DirtyRegion) {
        if other.full {
            self.record(tree, &EditScope::Structural { root: None });
            return;
        }
        if self.full {
            return;
        }
        for &r in &other.roots {
            self.record(tree, &EditScope::Structural { root: Some(r) });
        }
        for &(node, label) in &other.relabels {
            if !self.relabels.iter().any(|(n, _)| *n == node) {
                self.relabels.push((node, label));
            }
        }
        for s in &other.swaps {
            if let Some(chain) = self.swaps.iter_mut().find(|c| c.to == s.from) {
                chain.to = s.to;
                if chain.from == chain.to {
                    let from = chain.from;
                    self.swaps.retain(|c| c.from != from);
                }
            } else {
                self.swaps.push(*s);
            }
        }
        self.removed.extend_from_slice(&other.removed);
    }

    /// Conservative overlap probe for commit coalescing: could an edit
    /// whose effect covers the subtrees of `anchors` (inclusive) and the
    /// individual nodes of `points` interact with anything this region
    /// records? "Interact" errs wide — any id collision, any
    /// ancestor/descendant relation between a probe and a recorded
    /// structural root or relabeled node (relabels dirty their whole
    /// subtree: every descendant's label path runs through them), any
    /// probe anchor above a live swap target, and any dead or unknown
    /// node on either side all answer `true`. A `false` answer is a
    /// guarantee: the probed edit commutes with everything recorded here,
    /// so per-batch effects stay separable in a merged admission pass.
    ///
    /// Probes must be **live** in `tree` (probe a deletion's doomed nodes
    /// *before* deleting, like [`record_removals`](Self::record_removals));
    /// an id that does not resolve is treated as overlapping. Recorded
    /// ids that are dead in `tree` (removed refs, swapped-away sources)
    /// only participate in the id collision check — their subtree effect
    /// is anchored by the live structural root their deletion recorded.
    pub fn overlaps(&self, tree: &DataTree, anchors: &[NodeId], points: &[NodeId]) -> bool {
        if self.full {
            return true;
        }
        let mut my_ids = self
            .roots
            .iter()
            .copied()
            .chain(self.relabels.iter().map(|(n, _)| *n))
            .chain(self.swaps.iter().flat_map(|s| [s.from, s.to]))
            .chain(self.removed.iter().map(|r| r.id));
        if my_ids.any(|id| anchors.contains(&id) || points.contains(&id)) {
            return true;
        }
        // Subtree relations run only among live nodes; a dead probe (or a
        // dead recorded anchor, which record()'s stability invariant rules
        // out) overlaps by decree.
        if anchors.iter().chain(points).any(|&q| !tree.contains(q)) {
            return true;
        }
        let related = |a: NodeId, b: NodeId| {
            tree.is_proper_ancestor(a, b).unwrap_or(true)
                || tree.is_proper_ancestor(b, a).unwrap_or(true)
        };
        for a in self.roots.iter().chain(self.relabels.iter().map(|(n, _)| n)) {
            if !tree.contains(*a) {
                return true;
            }
            if anchors.iter().chain(points).any(|&q| related(*a, q)) {
                return true;
            }
        }
        // A probe anchor covering a live swap target: the swapped node's
        // ref sits inside the probed subtree.
        self.swaps
            .iter()
            .filter(|s| tree.contains(s.to))
            .any(|s| anchors.iter().any(|&q| tree.is_proper_ancestor(q, s.to).unwrap_or(true)))
    }

    /// Records the refs a deletion is about to remove (their labels as of
    /// deletion time) — the session enumerates the doomed subtree
    /// *before* applying the deletion (cost proportional to the subtree,
    /// like the deletion itself). Labels are rewritten to pre-batch labels
    /// through the relabel history; nodes whose id arrived via a swap are
    /// left to the swap patch (its chain already names the pre-batch ref).
    pub fn record_removals(&mut self, refs: &[NodeRef]) {
        if self.full {
            return;
        }
        for r in refs {
            if self.swaps.iter().any(|s| s.to == r.id) {
                continue;
            }
            let label = self.original_label(r.id).unwrap_or(r.label);
            self.removed.push(NodeRef { id: r.id, label });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{apply_undoable, Update};
    use crate::{parse_term, preorder_walk_count};

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn sibling_scopes_stay_disjoint_roots() {
        let t = parse_term("r(a#1(b#2),c#3(d#4))").unwrap();
        let mut region = DirtyRegion::new();
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        region.record(&t, &EditScope::Structural { root: Some(n(3)) });
        assert_eq!(region.structural_roots(), [n(1), n(3)]);
        assert!(!region.is_full() && !region.is_clean());
    }

    #[test]
    fn ancestor_absorbs_descendant_in_both_orders() {
        let t = parse_term("r(a#1(b#2(c#3)),d#4)").unwrap();
        // Descendant first, ancestor second: the ancestor replaces it.
        let mut region = DirtyRegion::new();
        region.record(&t, &EditScope::Structural { root: Some(n(2)) });
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        assert_eq!(region.structural_roots(), [n(1)]);
        // Ancestor first: the descendant is dropped on arrival.
        let mut region = DirtyRegion::new();
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        region.record(&t, &EditScope::Structural { root: Some(n(3)) });
        assert_eq!(region.structural_roots(), [n(1)]);
        // Duplicates collapse too.
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        assert_eq!(region.structural_roots(), [n(1)]);
    }

    #[test]
    fn relabels_keep_original_labels_and_follow_swaps() {
        let mut t = parse_term("r(a#1(b#2),c#3)").unwrap();
        let mut region = DirtyRegion::new();
        let step = |t: &mut crate::DataTree, region: &mut DirtyRegion, op: Update| {
            let (_tok, scope) = apply_undoable(t, &op).unwrap();
            region.record(t, &scope);
        };
        step(&mut t, &mut region, Update::Relabel { node: n(2), label: Label::new("x") });
        step(&mut t, &mut region, Update::Relabel { node: n(2), label: Label::new("y") });
        // First relabel wins: the entry remembers the PRE-BATCH label.
        assert_eq!(region.relabels(), [(n(2), Label::new("b"))]);
        assert_eq!(region.original_label(n(2)), Some(Label::new("b")));
        // The entry follows the node across an id swap, and the swap
        // itself names the pre-batch label.
        step(&mut t, &mut region, Update::ReplaceId { node: n(2), new_id: n(20) });
        assert_eq!(region.relabels(), [(n(20), Label::new("b"))]);
        assert_eq!(region.id_swaps(), [IdSwap { from: n(2), to: n(20), label: Label::new("b") }]);
        // Entries survive a covering structural scope: splice consumers
        // need the label history of nodes inside dirty subtrees.
        step(&mut t, &mut region, Update::DeleteNode { node: n(1) });
        assert_eq!(region.structural_roots(), [t.root_id()]);
        assert_eq!(region.relabels(), [(n(20), Label::new("b"))]);
    }

    #[test]
    fn id_swap_chains_compress_and_cancel() {
        let mut t = parse_term("r(a#1,b#2)").unwrap();
        let mut region = DirtyRegion::new();
        let swap = |t: &mut crate::DataTree, region: &mut DirtyRegion, from, to| {
            let (_tok, scope) =
                apply_undoable(t, &Update::ReplaceId { node: from, new_id: to }).unwrap();
            region.record(t, &scope);
        };
        swap(&mut t, &mut region, n(1), n(10));
        swap(&mut t, &mut region, n(10), n(11));
        assert_eq!(region.id_swaps(), [IdSwap { from: n(1), to: n(11), label: Label::new("a") }]);
        // Swapping back to the original id cancels the patch entirely.
        swap(&mut t, &mut region, n(11), n(1));
        assert!(region.id_swaps().is_empty());
        assert!(region.is_clean());
        // Independent swaps coexist.
        swap(&mut t, &mut region, n(1), n(12));
        swap(&mut t, &mut region, n(2), n(13));
        assert_eq!(region.id_swaps().len(), 2);
    }

    #[test]
    fn removals_rewrite_to_pre_batch_refs() {
        let mut t = parse_term("r(a#1(b#2),c#3)").unwrap();
        let mut region = DirtyRegion::new();
        // Relabel b#2 first: its removal must surface the PRE-BATCH ref.
        let (_tok, scope) =
            apply_undoable(&mut t, &Update::Relabel { node: n(2), label: Label::new("z") })
                .unwrap();
        region.record(&t, &scope);
        let doomed = [
            NodeRef { id: n(1), label: Label::new("a") },
            NodeRef { id: n(2), label: Label::new("z") },
        ];
        region.record_removals(&doomed);
        let (_tok, scope) = apply_undoable(&mut t, &Update::DeleteSubtree { node: n(1) }).unwrap();
        region.record(&t, &scope);
        assert_eq!(
            region.removed(),
            [
                NodeRef { id: n(1), label: Label::new("a") },
                NodeRef { id: n(2), label: Label::new("b") },
            ]
        );
        // A swapped-away node's deletion is the swap patch's business.
        let mut region = DirtyRegion::new();
        let (_tok, scope) =
            apply_undoable(&mut t, &Update::ReplaceId { node: n(3), new_id: n(30) }).unwrap();
        region.record(&t, &scope);
        region.record_removals(&[NodeRef { id: n(30), label: Label::new("c") }]);
        assert!(region.removed().is_empty());
        assert_eq!(region.id_swaps().len(), 1);
    }

    #[test]
    fn unknown_root_poisons_the_region() {
        let t = parse_term("r(a#1)").unwrap();
        let mut region = DirtyRegion::new();
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        region.record(&t, &EditScope::Structural { root: None });
        assert!(region.is_full());
        assert!(region.structural_roots().is_empty());
        // Poisoned regions ignore further detail but clear back to clean.
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        region.record_removals(&[NodeRef { id: n(1), label: Label::new("a") }]);
        assert!(region.structural_roots().is_empty() && region.removed().is_empty());
        region.clear();
        assert!(region.is_clean() && !region.is_full());
    }

    #[test]
    fn rollback_reset_leaves_region_clean() {
        let t = parse_term("r(a#1(b#2))").unwrap();
        let mut region = DirtyRegion::new();
        region.record(&t, &EditScope::Structural { root: Some(n(1)) });
        region.record(
            &t,
            &EditScope::Relabel { node: n(2), from: Label::new("b"), to: Label::new("c") },
        );
        region.record_removals(&[NodeRef { id: n(2), label: Label::new("c") }]);
        assert!(!region.is_clean());
        region.clear();
        assert!(region.is_clean());
        assert!(region.structural_roots().is_empty() && region.relabels().is_empty());
    }

    #[test]
    fn merge_unions_under_the_record_algebra() {
        let t = parse_term("r(a#1(b#2(c#3)),d#4(e#5),f#6)").unwrap();
        // Roots fold through absorb: a#1 (ours) absorbs b#2 (theirs),
        // d#4 arrives untouched.
        let mut ours = DirtyRegion::new();
        ours.record(&t, &EditScope::Structural { root: Some(n(1)) });
        ours.record(
            &t,
            &EditScope::Relabel { node: n(6), from: Label::new("f"), to: Label::new("g") },
        );
        let mut theirs = DirtyRegion::new();
        theirs.record(&t, &EditScope::Structural { root: Some(n(2)) });
        theirs.record(&t, &EditScope::Structural { root: Some(n(4)) });
        theirs.record(
            &t,
            &EditScope::Relabel { node: n(6), from: Label::new("g"), to: Label::new("h") },
        );
        ours.merge(&t, &theirs);
        assert_eq!(ours.structural_roots(), [n(1), n(4)]);
        // First-batch relabel wins: pre-batch label stays "f".
        assert_eq!(ours.relabels(), [(n(6), Label::new("f"))]);
    }

    #[test]
    fn merge_compresses_cross_region_swap_chains() {
        let mut t = parse_term("r(a#1,b#2)").unwrap();
        let swap = |t: &mut crate::DataTree, region: &mut DirtyRegion, from, to| {
            let (_tok, scope) =
                apply_undoable(t, &Update::ReplaceId { node: from, new_id: to }).unwrap();
            region.record(t, &scope);
        };
        // Batch 1 swaps 1→10; batch 2 swaps 10→11 — the merge must read
        // as the single chain 1→11, like recording both in one batch.
        let mut first = DirtyRegion::new();
        swap(&mut t, &mut first, n(1), n(10));
        let mut second = DirtyRegion::new();
        swap(&mut t, &mut second, n(10), n(11));
        let mut merged = first.clone();
        merged.merge(&t, &second);
        assert_eq!(merged.id_swaps(), [IdSwap { from: n(1), to: n(11), label: Label::new("a") }]);
        // A cross-batch swap-back cancels entirely.
        let mut back = DirtyRegion::new();
        swap(&mut t, &mut back, n(11), n(1));
        merged.merge(&t, &back);
        assert!(merged.id_swaps().is_empty() && merged.is_clean());
        // Removed refs concatenate; poison propagates both ways.
        let mut a = DirtyRegion::new();
        a.record_removals(&[NodeRef { id: n(2), label: Label::new("b") }]);
        let mut b = DirtyRegion::new();
        b.record(&t, &EditScope::Structural { root: None });
        a.merge(&t, &b);
        assert!(a.is_full() && a.removed().is_empty());
        let mut c = DirtyRegion::new();
        c.record_removals(&[NodeRef { id: n(2), label: Label::new("b") }]);
        a.merge(&t, &c);
        assert!(a.is_full(), "poison survives merging a clean-ish region in");
    }

    #[test]
    fn overlap_probe_separates_disjoint_subtrees() {
        let t = parse_term("r(a#1(b#2(c#3)),d#4(e#5),f#6)").unwrap();
        let mut region = DirtyRegion::new();
        region.record(&t, &EditScope::Structural { root: Some(n(2)) });
        // Inside the dirty subtree, at its root, or on an ancestor: overlap.
        assert!(region.overlaps(&t, &[n(3)], &[]));
        assert!(region.overlaps(&t, &[], &[n(2)]));
        assert!(region.overlaps(&t, &[n(1)], &[]));
        assert!(region.overlaps(&t, &[], &[n(1)]), "point above a root still overlaps");
        // A disjoint sibling subtree: clear.
        assert!(!region.overlaps(&t, &[n(4)], &[n(5)]));
        assert!(!region.overlaps(&t, &[], &[n(6)]));
        // Unknown probe id: conservative overlap.
        assert!(region.overlaps(&t, &[], &[n(99)]));
        // Relabels dirty their subtree both directions too.
        let mut region = DirtyRegion::new();
        region.record(
            &t,
            &EditScope::Relabel { node: n(4), from: Label::new("d"), to: Label::new("x") },
        );
        assert!(region.overlaps(&t, &[n(5)], &[]));
        assert!(region.overlaps(&t, &[], &[n(5)]));
        assert!(!region.overlaps(&t, &[n(2)], &[n(6)]));
        // A poisoned region overlaps everything.
        let mut region = DirtyRegion::new();
        region.record(&t, &EditScope::Structural { root: None });
        assert!(region.overlaps(&t, &[], &[]));
    }

    #[test]
    fn overlap_probe_sees_swaps_and_removals_by_id() {
        let mut t = parse_term("r(a#1(b#2),c#3(d#4))").unwrap();
        let mut region = DirtyRegion::new();
        let (_tok, scope) =
            apply_undoable(&mut t, &Update::ReplaceId { node: n(2), new_id: n(20) }).unwrap();
        region.record(&t, &scope);
        // Both endpoints of a swap collide by id; the dead source joins
        // only the id check, the live target also joins subtree checks.
        assert!(region.overlaps(&t, &[], &[n(2)]));
        assert!(region.overlaps(&t, &[], &[n(20)]));
        assert!(region.overlaps(&t, &[n(1)], &[]), "anchor above the live swap target");
        assert!(!region.overlaps(&t, &[n(3)], &[n(4)]));
        // Removed refs collide by their pre-batch id even though dead.
        let mut region = DirtyRegion::new();
        region.record_removals(&[NodeRef { id: n(4), label: Label::new("d") }]);
        let (_tok, scope) = apply_undoable(&mut t, &Update::DeleteNode { node: n(4) }).unwrap();
        region.record(&t, &scope);
        assert!(region.overlaps(&t, &[], &[n(4)]));
        // The deletion's structural root (c#3) anchors the subtree effect.
        assert!(region.overlaps(&t, &[n(3)], &[]));
        assert!(!region.overlaps(&t, &[], &[n(20)]));
    }

    #[test]
    fn relabel_only_batches_record_with_zero_walks() {
        // The accumulator itself must never snapshot the tree: recording a
        // relabel-only batch performs zero pre-order walks — the property
        // the delta admission path's walk-count test leans on end to end.
        let mut t = parse_term("r(a#1(b#2),c#3)").unwrap();
        let mut region = DirtyRegion::new();
        let walks = preorder_walk_count();
        for (node, label) in [(n(1), "x"), (n(2), "y"), (n(3), "z")] {
            let (_tok, scope) =
                apply_undoable(&mut t, &Update::Relabel { node, label: Label::new(label) })
                    .unwrap();
            region.record(&t, &scope);
        }
        assert_eq!(region.relabels().len(), 3);
        assert!(region.structural_roots().is_empty());
        assert_eq!(preorder_walk_count(), walks, "recording relabels must not walk");
    }
}
