//! The unordered data tree (Def. 2.1).
//!
//! A [`DataTree`] is a slab arena of nodes in struct-of-arrays layout:
//! parallel dense vectors hold each slot's id, label, generation tag and
//! the four structural links (parent, first/last child, prev/next
//! sibling). Children form an intrusive sibling chain — there is no
//! per-node `Vec` — so traversal touches only dense arrays and inserting
//! or unlinking a child is O(1). The tree is semantically *unordered*:
//! structural comparison and hashing ignore sibling order, but all
//! operations preserve deterministic child order (insertion order, with
//! undo restoring exact positions) because deterministic consumers rely
//! on it.
//!
//! Deleted slots go on a free list (threaded through `next_sibling`) and
//! are reused by later insertions, so arena capacity is bounded by the
//! peak number of live-or-parked nodes, not by the total ever inserted.
//! Every reuse bumps the slot's **generation tag**; undo tokens record
//! the generations of the slots they reference and are rejected with
//! [`TreeError::StaleToken`] if any referenced slot has been recycled
//! since (ABA safety). `NodeId`s themselves are never recycled, so the
//! public id-keyed API needs no generation checks.
//!
//! The root is an ordinary node; the paper treats it specially only in the
//! query language (no predicates on the root), not in the data model.

use crate::label::Label;
use crate::node::NodeId;
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;

thread_local! {
    /// Per-thread count of full pre-order walks performed by
    /// [`DataTree::preorder_snapshot_into`] (and its allocating wrapper).
    /// Tests use the delta of [`preorder_walk_count`] to assert that
    /// edit-proportional refresh paths really do avoid O(n) re-walks;
    /// thread-local so concurrently running tests (or search shards)
    /// cannot inflate each other's deltas.
    static PREORDER_WALKS: Cell<u64> = const { Cell::new(0) };
}

/// The number of full pre-order snapshot walks performed so far **on the
/// calling thread**. Monotone; only deltas are meaningful.
pub fn preorder_walk_count() -> u64 {
    PREORDER_WALKS.with(Cell::get)
}

/// Sentinel for "no slot" in the structural link arrays.
const NIL: u32 = u32::MAX;

/// Errors raised by tree manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The referenced node id is not present in this tree.
    NodeNotFound(NodeId),
    /// The node id is already present in this tree (ids must be unique).
    DuplicateId(NodeId),
    /// The operation would detach or re-attach the root.
    RootImmovable,
    /// Moving `node` under `target` would create a cycle
    /// (`target` is a descendant of `node`).
    WouldCreateCycle { node: NodeId, target: NodeId },
    /// An undo token referenced an arena slot that has been freed (and
    /// possibly recycled for an unrelated node) since the token was
    /// issued. Consuming it would alias the recycled slot, so it is
    /// rejected instead; the tree is left untouched.
    StaleToken,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NodeNotFound(id) => write!(f, "node {id} not found in tree"),
            TreeError::DuplicateId(id) => write!(f, "node id {id} already present in tree"),
            TreeError::RootImmovable => write!(f, "the root node cannot be moved or removed"),
            TreeError::WouldCreateCycle { node, target } => {
                write!(f, "moving {node} under its descendant {target} would create a cycle")
            }
            TreeError::StaleToken => {
                write!(f, "undo token refers to an arena slot recycled since it was issued")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// A lightweight view of a node: its id and label, as in the paper where a
/// node *is* the pair `(id, label)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    pub id: NodeId,
    pub label: Label,
}

/// Opaque restore token for [`DataTree::detach_subtree`]. Valid only on
/// the issuing tree, consumed LIFO by [`DataTree::reattach_subtree`].
///
/// The token records the generation of every slot it references; if any
/// has been recycled in the meantime the reattach is rejected with
/// [`TreeError::StaleToken`] rather than corrupting the recycled node.
#[derive(Debug)]
pub struct DetachToken {
    slot: u32,
    generation: u32,
    parent_slot: u32,
    parent_generation: u32,
    /// Position in the parent's child list, restored on reattach so that
    /// an apply/undo round trip reproduces the original child order (the
    /// tree is semantically unordered, but deterministic consumers — the
    /// sharded search — rely on undo being an *exact* inverse).
    child_index: usize,
}

/// Opaque restore token for [`DataTree::splice_node`]. Valid only on the
/// issuing tree, consumed LIFO by [`DataTree::unsplice_node`]; stale
/// tokens are rejected (see [`DetachToken`]).
#[derive(Debug)]
pub struct SpliceToken {
    slot: u32,
    generation: u32,
    parent_slot: u32,
    parent_generation: u32,
    /// Position in the parent's child list (see [`DetachToken`]).
    child_index: usize,
    /// The promoted children with their generations at splice time, in
    /// original child order.
    child_slots: Vec<(u32, u32)>,
    id: NodeId,
}

impl DetachToken {
    /// The detached subtree's former parent (for edit-scope reporting).
    pub(crate) fn parent_id(&self, tree: &DataTree) -> NodeId {
        tree.ids[self.parent_slot as usize]
    }
}

impl SpliceToken {
    /// The spliced node's former parent (for edit-scope reporting).
    pub(crate) fn parent_id(&self, tree: &DataTree) -> NodeId {
        tree.ids[self.parent_slot as usize]
    }
}

/// Iterative pre-order walk over the sibling-chain arrays, confined to
/// the subtree rooted at `start`. Free function (not a method) so callers
/// holding disjoint `&mut` borrows of other `DataTree` fields — e.g. the
/// id index during detach/reattach — can walk without allocating a slot
/// buffer.
fn chain_walk(
    first_child: &[u32],
    next_sibling: &[u32],
    parent: &[u32],
    start: u32,
    f: &mut impl FnMut(u32),
) {
    let mut slot = start;
    loop {
        f(slot);
        let fc = first_child[slot as usize];
        if fc != NIL {
            slot = fc;
            continue;
        }
        loop {
            if slot == start {
                return;
            }
            let ns = next_sibling[slot as usize];
            if ns != NIL {
                slot = ns;
                break;
            }
            slot = parent[slot as usize];
        }
    }
}

/// An unordered data tree with uniquely identified nodes, backed by a
/// generation-tagged slab arena in struct-of-arrays layout.
#[derive(Clone)]
pub struct DataTree {
    ids: Vec<NodeId>,
    labels: Vec<Label>,
    /// Generation tag per slot, bumped each time the slot is freed.
    generation: Vec<u32>,
    parent: Vec<u32>,
    first_child: Vec<u32>,
    last_child: Vec<u32>,
    prev_sibling: Vec<u32>,
    next_sibling: Vec<u32>,
    /// Head of the free list, threaded through `next_sibling`.
    free_head: u32,
    free_len: usize,
    root: u32,
    by_id: HashMap<NodeId, u32>,
    live: usize,
}

/// Non-allocating iterator over a node's children (in child-list order),
/// produced by [`DataTree::children_iter`].
pub struct ChildIds<'a> {
    tree: &'a DataTree,
    cursor: u32,
}

impl Iterator for ChildIds<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        if self.cursor == NIL {
            return None;
        }
        let id = self.tree.ids[self.cursor as usize];
        self.cursor = self.tree.next_sibling[self.cursor as usize];
        Some(id)
    }
}

impl DataTree {
    /// Creates a tree consisting of a single root node with a fresh id.
    pub fn new(root_label: impl Into<Label>) -> Self {
        Self::with_root_id(NodeId::fresh(), root_label)
    }

    /// Creates a tree consisting of a single root node with the given id.
    pub fn with_root_id(id: NodeId, root_label: impl Into<Label>) -> Self {
        let mut by_id = HashMap::new();
        by_id.insert(id, 0);
        DataTree {
            ids: vec![id],
            labels: vec![root_label.into()],
            generation: vec![0],
            parent: vec![NIL],
            first_child: vec![NIL],
            last_child: vec![NIL],
            prev_sibling: vec![NIL],
            next_sibling: vec![NIL],
            free_head: NIL,
            free_len: 0,
            root: 0,
            by_id,
            live: 1,
        }
    }

    fn slot(&self, id: NodeId) -> Result<u32, TreeError> {
        self.by_id.get(&id).copied().ok_or(TreeError::NodeNotFound(id))
    }

    fn ref_at(&self, slot: u32) -> NodeRef {
        NodeRef { id: self.ids[slot as usize], label: self.labels[slot as usize] }
    }

    /// Takes a slot off the free list (or grows the arrays) and
    /// initialises it as a childless node; the caller links it.
    fn alloc(&mut self, id: NodeId, label: Label) -> u32 {
        if self.free_head != NIL {
            let slot = self.free_head;
            let s = slot as usize;
            self.free_head = self.next_sibling[s];
            self.free_len -= 1;
            self.ids[s] = id;
            self.labels[s] = label;
            self.parent[s] = NIL;
            self.first_child[s] = NIL;
            self.last_child[s] = NIL;
            self.prev_sibling[s] = NIL;
            self.next_sibling[s] = NIL;
            slot
        } else {
            let slot = self.ids.len() as u32;
            assert!(slot != NIL, "arena full (u32::MAX slots)");
            self.ids.push(id);
            self.labels.push(label);
            self.generation.push(0);
            self.parent.push(NIL);
            self.first_child.push(NIL);
            self.last_child.push(NIL);
            self.prev_sibling.push(NIL);
            self.next_sibling.push(NIL);
            slot
        }
    }

    /// Returns a slot to the free list, bumping its generation so any
    /// outstanding token referencing it becomes stale.
    fn free_slot(&mut self, slot: u32) {
        let s = slot as usize;
        self.generation[s] = self.generation[s].wrapping_add(1);
        self.parent[s] = NIL;
        self.first_child[s] = NIL;
        self.last_child[s] = NIL;
        self.prev_sibling[s] = NIL;
        self.next_sibling[s] = self.free_head;
        self.free_head = slot;
        self.free_len += 1;
    }

    /// Appends `slot` at the end of `parent`'s child chain.
    fn link_last(&mut self, parent: u32, slot: u32) {
        let p = parent as usize;
        let s = slot as usize;
        let tail = self.last_child[p];
        self.parent[s] = parent;
        self.prev_sibling[s] = tail;
        self.next_sibling[s] = NIL;
        if tail == NIL {
            self.first_child[p] = slot;
        } else {
            self.next_sibling[tail as usize] = slot;
        }
        self.last_child[p] = slot;
    }

    /// Inserts `slot` so it ends up at position `min(index, len)` in
    /// `parent`'s child chain.
    fn link_at(&mut self, parent: u32, slot: u32, index: usize) {
        let mut cursor = self.first_child[parent as usize];
        let mut i = 0;
        while cursor != NIL && i < index {
            cursor = self.next_sibling[cursor as usize];
            i += 1;
        }
        if cursor == NIL {
            self.link_last(parent, slot);
            return;
        }
        let c = cursor as usize;
        let s = slot as usize;
        let before = self.prev_sibling[c];
        self.parent[s] = parent;
        self.prev_sibling[s] = before;
        self.next_sibling[s] = cursor;
        self.prev_sibling[c] = slot;
        if before == NIL {
            self.first_child[parent as usize] = slot;
        } else {
            self.next_sibling[before as usize] = slot;
        }
    }

    /// Unlinks `slot` from its parent's child chain (parent pointer is
    /// left as-is; the caller relinks or frees).
    fn unlink(&mut self, slot: u32) {
        let s = slot as usize;
        let p = self.parent[s] as usize;
        let prev = self.prev_sibling[s];
        let next = self.next_sibling[s];
        if prev == NIL {
            self.first_child[p] = next;
        } else {
            self.next_sibling[prev as usize] = next;
        }
        if next == NIL {
            self.last_child[p] = prev;
        } else {
            self.prev_sibling[next as usize] = prev;
        }
        self.prev_sibling[s] = NIL;
        self.next_sibling[s] = NIL;
    }

    /// Position of `slot` in its parent's child chain.
    fn position_in_parent(&self, slot: u32) -> usize {
        let mut cursor = self.first_child[self.parent[slot as usize] as usize];
        let mut i = 0;
        while cursor != slot {
            cursor = self.next_sibling[cursor as usize];
            i += 1;
        }
        i
    }

    fn child_slot_iter(&self, slot: u32) -> impl Iterator<Item = u32> + '_ {
        let first = self.first_child[slot as usize];
        std::iter::successors((first != NIL).then_some(first), move |&c| {
            let n = self.next_sibling[c as usize];
            (n != NIL).then_some(n)
        })
    }

    fn walk_slots(&self, start: u32, f: &mut impl FnMut(u32)) {
        chain_walk(&self.first_child, &self.next_sibling, &self.parent, start, f);
    }

    /// The root node's id.
    pub fn root_id(&self) -> NodeId {
        self.ids[self.root as usize]
    }

    /// The root node's label.
    pub fn root_label(&self) -> Label {
        self.labels[self.root as usize]
    }

    /// Number of live nodes (including the root).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff the tree consists of the root only.
    pub fn is_empty(&self) -> bool {
        self.live == 1
    }

    /// Total arena slots allocated (live + parked + free-listed). Bounded
    /// by the peak live-node count under churn — the free list reuses
    /// deleted slots — which is what the leak-regression tests assert.
    pub fn slot_capacity(&self) -> usize {
        self.ids.len()
    }

    /// Slots currently on the free list, awaiting reuse.
    pub fn free_slots(&self) -> usize {
        self.free_len
    }

    /// Does this tree contain a node with this id?
    pub fn contains(&self, id: NodeId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// The label of `id`.
    pub fn label(&self, id: NodeId) -> Result<Label, TreeError> {
        Ok(self.labels[self.slot(id)? as usize])
    }

    /// The node view `(id, label)` of `id`.
    pub fn node(&self, id: NodeId) -> Result<NodeRef, TreeError> {
        Ok(self.ref_at(self.slot(id)?))
    }

    /// The parent of `id`, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Result<Option<NodeId>, TreeError> {
        let p = self.parent[self.slot(id)? as usize];
        Ok((p != NIL).then(|| self.ids[p as usize]))
    }

    /// Child ids of `id` (order is incidental; the tree is unordered).
    ///
    /// Allocates a fresh `Vec` per call; hot paths should prefer
    /// [`children_iter`](Self::children_iter) or
    /// [`for_each_child`](Self::for_each_child).
    pub fn children(&self, id: NodeId) -> Result<Vec<NodeId>, TreeError> {
        Ok(self.children_iter(id)?.collect())
    }

    /// Non-allocating iterator over the children of `id`, in child-list
    /// order (the same order [`children`](Self::children) returns).
    pub fn children_iter(&self, id: NodeId) -> Result<ChildIds<'_>, TreeError> {
        let slot = self.slot(id)?;
        Ok(ChildIds { tree: self, cursor: self.first_child[slot as usize] })
    }

    /// Calls `f` with each child's `(id, label)` view, in child-list
    /// order, without allocating.
    pub fn for_each_child(&self, id: NodeId, mut f: impl FnMut(NodeRef)) -> Result<(), TreeError> {
        let slot = self.slot(id)?;
        let mut c = self.first_child[slot as usize];
        while c != NIL {
            f(self.ref_at(c));
            c = self.next_sibling[c as usize];
        }
        Ok(())
    }

    /// All node views, root first, in depth-first order.
    pub fn nodes(&self) -> Vec<NodeRef> {
        let mut out = Vec::with_capacity(self.live);
        self.walk_slots(self.root, &mut |s| out.push(self.ref_at(s)));
        out
    }

    /// All node ids, root first, in depth-first order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.live);
        self.walk_slots(self.root, &mut |s| out.push(self.ids[s as usize]));
        out
    }

    /// Pre-order traversal as `(id, label, parent_index)` triples, where
    /// `parent_index` points at an earlier entry of the returned vector
    /// (`None` for the root). This is the bulk-export used by evaluation
    /// engines to build dense snapshots in one pass, without per-node
    /// id lookups.
    pub fn preorder_snapshot(&self) -> Vec<(NodeId, Label, Option<usize>)> {
        let mut out = Vec::with_capacity(self.live);
        self.preorder_snapshot_into(&mut out);
        out
    }

    /// Like [`preorder_snapshot`](Self::preorder_snapshot), but fills a
    /// caller-owned buffer (cleared first) so repeated snapshots — e.g. an
    /// evaluator refreshing after every candidate edit — reuse one heap
    /// allocation instead of allocating a fresh triple `Vec` per call.
    ///
    /// Implemented as an iterative sibling-chain walk over the dense
    /// arrays: no recursion (stack-safe at any depth) and no per-node
    /// heap traffic beyond the output buffer and an ancestor stack of
    /// height-many indices.
    pub fn preorder_snapshot_into(&self, out: &mut Vec<(NodeId, Label, Option<usize>)>) {
        PREORDER_WALKS.with(|c| c.set(c.get() + 1));
        out.clear();
        out.reserve(self.live);
        // Output indices of the current root path; `last()` is the
        // parent index for the node being emitted.
        let mut ancestors: Vec<usize> = Vec::new();
        let mut slot = self.root;
        loop {
            let my_index = out.len();
            out.push((
                self.ids[slot as usize],
                self.labels[slot as usize],
                ancestors.last().copied(),
            ));
            let fc = self.first_child[slot as usize];
            if fc != NIL {
                ancestors.push(my_index);
                slot = fc;
                continue;
            }
            loop {
                if slot == self.root {
                    return;
                }
                let ns = self.next_sibling[slot as usize];
                if ns != NIL {
                    slot = ns;
                    break;
                }
                slot = self.parent[slot as usize];
                ancestors.pop();
            }
        }
    }

    /// Iterative pre-order walk with depth, for depth-aware consumers
    /// (height, rendering).
    fn walk_depth(&self, f: &mut impl FnMut(u32, usize)) {
        let mut slot = self.root;
        let mut depth = 0usize;
        loop {
            f(slot, depth);
            let fc = self.first_child[slot as usize];
            if fc != NIL {
                depth += 1;
                slot = fc;
                continue;
            }
            loop {
                if slot == self.root {
                    return;
                }
                let ns = self.next_sibling[slot as usize];
                if ns != NIL {
                    slot = ns;
                    break;
                }
                slot = self.parent[slot as usize];
                depth -= 1;
            }
        }
    }

    /// Depth of `id`: the root has depth 0.
    pub fn depth(&self, id: NodeId) -> Result<usize, TreeError> {
        let mut slot = self.slot(id)?;
        let mut depth = 0;
        while self.parent[slot as usize] != NIL {
            slot = self.parent[slot as usize];
            depth += 1;
        }
        Ok(depth)
    }

    /// Maximum depth over all nodes.
    pub fn height(&self) -> usize {
        let mut max = 0;
        self.walk_depth(&mut |_, d| max = max.max(d));
        max
    }

    /// Is `anc` a proper ancestor of `desc`?
    pub fn is_proper_ancestor(&self, anc: NodeId, desc: NodeId) -> Result<bool, TreeError> {
        let anc_slot = self.slot(anc)?;
        let mut slot = self.slot(desc)?;
        while self.parent[slot as usize] != NIL {
            slot = self.parent[slot as usize];
            if slot == anc_slot {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Labels on the path from the root's *child* down to `id`, i.e. the
    /// root label is excluded. For the root itself this is empty. This is
    /// the string relevant to linear-path query membership.
    pub fn label_path(&self, id: NodeId) -> Result<Vec<Label>, TreeError> {
        let mut slot = self.slot(id)?;
        let mut path = Vec::new();
        while self.parent[slot as usize] != NIL {
            path.push(self.labels[slot as usize]);
            slot = self.parent[slot as usize];
        }
        path.reverse();
        Ok(path)
    }

    /// Ids on the path root → `id`, inclusive of both ends.
    pub fn id_path(&self, id: NodeId) -> Result<Vec<NodeId>, TreeError> {
        let mut slot = self.slot(id)?;
        let mut path = vec![self.ids[slot as usize]];
        while self.parent[slot as usize] != NIL {
            slot = self.parent[slot as usize];
            path.push(self.ids[slot as usize]);
        }
        path.reverse();
        Ok(path)
    }

    /// Inserts a new leaf with a fresh id under `parent`.
    pub fn add(&mut self, parent: NodeId, label: impl Into<Label>) -> Result<NodeId, TreeError> {
        self.add_with_id(parent, NodeId::fresh(), label)
    }

    /// Inserts a new leaf with an explicit id under `parent`.
    pub fn add_with_id(
        &mut self,
        parent: NodeId,
        id: NodeId,
        label: impl Into<Label>,
    ) -> Result<NodeId, TreeError> {
        let parent_slot = self.slot(parent)?;
        if self.by_id.contains_key(&id) {
            return Err(TreeError::DuplicateId(id));
        }
        let slot = self.alloc(id, label.into());
        self.link_last(parent_slot, slot);
        self.by_id.insert(id, slot);
        self.live += 1;
        Ok(id)
    }

    /// Changes the label of `id` (a "modification of label" update).
    pub fn relabel(&mut self, id: NodeId, label: impl Into<Label>) -> Result<(), TreeError> {
        let slot = self.slot(id)?;
        self.labels[slot as usize] = label.into();
        Ok(())
    }

    /// Replaces the node `id` by a new node with `new_id` (same label, same
    /// position, same children). This is the `I[n → n']` operation used in
    /// the proof of Theorem 3.1.
    pub fn replace_id(&mut self, id: NodeId, new_id: NodeId) -> Result<(), TreeError> {
        let slot = self.slot(id)?;
        if self.by_id.contains_key(&new_id) {
            return Err(TreeError::DuplicateId(new_id));
        }
        self.by_id.remove(&id);
        self.by_id.insert(new_id, slot);
        self.ids[slot as usize] = new_id;
        Ok(())
    }

    /// Deletes the subtree rooted at `id` (the root cannot be deleted).
    /// Freed slots go on the free list for reuse by later insertions.
    pub fn delete_subtree(&mut self, id: NodeId) -> Result<(), TreeError> {
        let slot = self.slot(id)?;
        if slot == self.root {
            return Err(TreeError::RootImmovable);
        }
        self.unlink(slot);
        // Collect before freeing: free-list threading reuses the
        // `next_sibling` cells the walk still needs.
        let mut doomed = Vec::new();
        self.walk_slots(slot, &mut |s| doomed.push(s));
        for &s in &doomed {
            self.by_id.remove(&self.ids[s as usize]);
            self.free_slot(s);
        }
        self.live -= doomed.len();
        Ok(())
    }

    /// Deletes the node `id` only, promoting its children to its parent
    /// ("splice out").
    pub fn delete_node(&mut self, id: NodeId) -> Result<(), TreeError> {
        let slot = self.slot(id)?;
        if slot == self.root {
            return Err(TreeError::RootImmovable);
        }
        let parent_slot = self.parent[slot as usize];
        self.unlink(slot);
        // Promote children, preserving order, appended at the end of the
        // parent's chain (matching the historical `retain` + `extend`).
        let mut c = self.first_child[slot as usize];
        self.first_child[slot as usize] = NIL;
        self.last_child[slot as usize] = NIL;
        while c != NIL {
            let next = self.next_sibling[c as usize];
            self.link_last(parent_slot, c);
            c = next;
        }
        self.by_id.remove(&id);
        self.free_slot(slot);
        self.live -= 1;
        Ok(())
    }

    /// Moves the subtree rooted at `id` under `new_parent`.
    pub fn move_node(&mut self, id: NodeId, new_parent: NodeId) -> Result<(), TreeError> {
        let slot = self.slot(id)?;
        let target = self.slot(new_parent)?;
        if slot == self.root {
            return Err(TreeError::RootImmovable);
        }
        // Walk up from the target; hitting `slot` means `new_parent` lies in
        // the subtree being moved.
        let mut cursor = target;
        loop {
            if cursor == slot {
                return Err(TreeError::WouldCreateCycle { node: id, target: new_parent });
            }
            if self.parent[cursor as usize] == NIL {
                break;
            }
            cursor = self.parent[cursor as usize];
        }
        self.unlink(slot);
        self.link_last(target, slot);
        Ok(())
    }

    /// Detaches the subtree rooted at `id` without destroying it: the
    /// subtree's nodes stay in the arena but become unreachable and their
    /// ids are unregistered, so the tree behaves exactly as after
    /// [`delete_subtree`](Self::delete_subtree). The returned token
    /// restores the subtree via [`reattach_subtree`](Self::reattach_subtree).
    ///
    /// This is the undoable half of subtree deletion used by clone-free
    /// candidate search: apply → evaluate → reattach, no tree copies.
    /// Parked slots are not on the free list, so they cannot be recycled
    /// out from under the token.
    ///
    /// Tokens are only valid on the tree that issued them and must be
    /// consumed LIFO with respect to other undoable edits; while a subtree
    /// is detached, re-inserting one of its node ids is the caller's bug
    /// (checked on reattach in debug builds).
    pub fn detach_subtree(&mut self, id: NodeId) -> Result<DetachToken, TreeError> {
        let slot = self.slot(id)?;
        if slot == self.root {
            return Err(TreeError::RootImmovable);
        }
        let parent_slot = self.parent[slot as usize];
        let child_index = self.position_in_parent(slot);
        let mut count = 0usize;
        {
            let Self {
                ref first_child, ref next_sibling, ref parent, ref ids, ref mut by_id, ..
            } = *self;
            chain_walk(first_child, next_sibling, parent, slot, &mut |s| {
                by_id.remove(&ids[s as usize]);
                count += 1;
            });
        }
        self.live -= count;
        self.unlink(slot);
        Ok(DetachToken {
            slot,
            generation: self.generation[slot as usize],
            parent_slot,
            parent_generation: self.generation[parent_slot as usize],
            child_index,
        })
    }

    /// Restores a subtree detached by [`detach_subtree`](Self::detach_subtree),
    /// at its original position in the parent's child list — undo is an
    /// exact inverse, not merely an isomorphic one.
    ///
    /// Fails with [`TreeError::StaleToken`] (leaving the tree untouched)
    /// if the former parent's slot — or the subtree's own — was freed and
    /// recycled after the token was issued.
    pub fn reattach_subtree(&mut self, token: DetachToken) -> Result<(), TreeError> {
        let DetachToken { slot, generation, parent_slot, parent_generation, child_index } = token;
        if self.generation[slot as usize] != generation
            || self.generation[parent_slot as usize] != parent_generation
        {
            return Err(TreeError::StaleToken);
        }
        let mut count = 0usize;
        {
            let Self {
                ref first_child, ref next_sibling, ref parent, ref ids, ref mut by_id, ..
            } = *self;
            chain_walk(first_child, next_sibling, parent, slot, &mut |s| {
                let sid = ids[s as usize];
                let prev = by_id.insert(sid, s);
                debug_assert!(
                    prev.is_none(),
                    "id {sid} was re-inserted while its subtree was detached"
                );
                count += 1;
            });
        }
        self.live += count;
        self.link_at(parent_slot, slot, child_index);
        Ok(())
    }

    /// Splices out node `id` without destroying it: its children are
    /// promoted to its parent and the node becomes unreachable, exactly as
    /// after [`delete_node`](Self::delete_node). The returned token
    /// restores it via [`unsplice_node`](Self::unsplice_node); the same
    /// LIFO discipline as [`detach_subtree`](Self::detach_subtree) applies.
    pub fn splice_node(&mut self, id: NodeId) -> Result<SpliceToken, TreeError> {
        let slot = self.slot(id)?;
        if slot == self.root {
            return Err(TreeError::RootImmovable);
        }
        let parent_slot = self.parent[slot as usize];
        let child_index = self.position_in_parent(slot);
        let child_slots: Vec<(u32, u32)> =
            self.child_slot_iter(slot).map(|c| (c, self.generation[c as usize])).collect();
        self.unlink(slot);
        let mut c = self.first_child[slot as usize];
        self.first_child[slot as usize] = NIL;
        self.last_child[slot as usize] = NIL;
        while c != NIL {
            let next = self.next_sibling[c as usize];
            self.link_last(parent_slot, c);
            c = next;
        }
        self.by_id.remove(&id);
        self.live -= 1;
        Ok(SpliceToken {
            slot,
            generation: self.generation[slot as usize],
            parent_slot,
            parent_generation: self.generation[parent_slot as usize],
            child_index,
            child_slots,
            id,
        })
    }

    /// Restores a node spliced out by [`splice_node`](Self::splice_node),
    /// at its original position in the parent's child list (see
    /// [`reattach_subtree`](Self::reattach_subtree)).
    ///
    /// Fails with [`TreeError::StaleToken`] (leaving the tree untouched)
    /// if the node's former slot, its former parent's, or any promoted
    /// child's was freed and recycled after the token was issued.
    pub fn unsplice_node(&mut self, token: SpliceToken) -> Result<(), TreeError> {
        let SpliceToken {
            slot,
            generation,
            parent_slot,
            parent_generation,
            child_index,
            child_slots,
            id,
        } = token;
        if self.generation[slot as usize] != generation
            || self.generation[parent_slot as usize] != parent_generation
            || child_slots.iter().any(|&(c, g)| self.generation[c as usize] != g)
        {
            return Err(TreeError::StaleToken);
        }
        for &(c, _) in &child_slots {
            debug_assert_eq!(
                self.parent[c as usize], parent_slot,
                "promoted child moved while its parent was spliced out (LIFO violation)"
            );
            self.unlink(c);
        }
        self.link_at(parent_slot, slot, child_index);
        for &(c, _) in &child_slots {
            self.link_last(slot, c);
        }
        debug_assert!(
            !self.by_id.contains_key(&id),
            "id {id} was re-inserted while its node was spliced out"
        );
        self.by_id.insert(id, slot);
        self.live += 1;
        Ok(())
    }

    /// The position of `id` in its parent's child list (`None` for the
    /// root). Crate-internal: lets undoable moves record and restore exact
    /// child order.
    pub(crate) fn child_position(&self, id: NodeId) -> Result<Option<usize>, TreeError> {
        let slot = self.slot(id)?;
        if self.parent[slot as usize] == NIL {
            return Ok(None);
        }
        Ok(Some(self.position_in_parent(slot)))
    }

    /// Moves `id` (already a child of its current parent) to position
    /// `index` in that parent's child list. Crate-internal counterpart of
    /// [`child_position`](Self::child_position).
    pub(crate) fn restore_child_position(&mut self, id: NodeId, index: usize) {
        let slot = self.slot(id).expect("live node");
        let parent = self.parent[slot as usize];
        if parent == NIL {
            return;
        }
        self.unlink(slot);
        self.link_at(parent, slot, index);
    }

    /// Grafts a copy of the subtree of `other` rooted at `src` under
    /// `parent`, **preserving node ids**. Fails if any id would collide.
    pub fn graft_subtree(
        &mut self,
        parent: NodeId,
        other: &DataTree,
        src: NodeId,
    ) -> Result<NodeId, TreeError> {
        self.graft_inner(parent, other, src, false)
    }

    /// Grafts a copy of the subtree of `other` rooted at `src` under
    /// `parent`, **minting fresh ids** for every copied node (the paper's
    /// notion of a *copy*: same structure and labels, fresh ids).
    pub fn graft_copy(
        &mut self,
        parent: NodeId,
        other: &DataTree,
        src: NodeId,
    ) -> Result<NodeId, TreeError> {
        self.graft_inner(parent, other, src, true)
    }

    fn graft_inner(
        &mut self,
        parent: NodeId,
        other: &DataTree,
        src: NodeId,
        fresh: bool,
    ) -> Result<NodeId, TreeError> {
        let src_slot = other.slot(src)?;
        // Pre-validate id uniqueness when preserving ids so that a failed
        // graft leaves `self` untouched.
        if !fresh {
            let mut clash = None;
            other.walk_slots(src_slot, &mut |s| {
                let sid = other.ids[s as usize];
                if clash.is_none() && self.by_id.contains_key(&sid) {
                    clash = Some(sid);
                }
            });
            if let Some(id) = clash {
                return Err(TreeError::DuplicateId(id));
            }
        }
        // Iterative pre-order copy: the stack holds (source slot, dest
        // parent id), children pushed in reverse so they pop — and are
        // appended — in original order.
        let mut stack = vec![(src_slot, parent)];
        let mut scratch: Vec<u32> = Vec::new();
        let mut new_root = None;
        while let Some((slot, dst_parent)) = stack.pop() {
            let id = if fresh { NodeId::fresh() } else { other.ids[slot as usize] };
            let new_id = self.add_with_id(dst_parent, id, other.labels[slot as usize])?;
            if new_root.is_none() {
                new_root = Some(new_id);
            }
            scratch.clear();
            scratch.extend(other.child_slot_iter(slot));
            for &c in scratch.iter().rev() {
                stack.push((c, new_id));
            }
        }
        Ok(new_root.expect("non-empty graft"))
    }

    /// The refs of the subtree rooted at `id` (inclusive), in pre-order.
    /// Cost proportional to the subtree — this is how a session captures
    /// what a pending deletion is about to remove (for
    /// [`DirtyRegion::record_removals`](crate::DirtyRegion::record_removals))
    /// without snapshotting the document.
    pub fn subtree_nodes(&self, id: NodeId) -> Result<Vec<NodeRef>, TreeError> {
        let slot = self.slot(id)?;
        let mut out = Vec::new();
        self.walk_slots(slot, &mut |s| out.push(self.ref_at(s)));
        Ok(out)
    }

    /// Extracts the subtree rooted at `id` as a standalone tree
    /// (ids preserved).
    pub fn subtree(&self, id: NodeId) -> Result<DataTree, TreeError> {
        let slot = self.slot(id)?;
        let mut out = DataTree::with_root_id(self.ids[slot as usize], self.labels[slot as usize]);
        let root = out.root_id();
        let kids: Vec<u32> = self.child_slot_iter(slot).collect();
        for c in kids {
            out.graft_subtree(root, self, self.ids[c as usize])?;
        }
        Ok(out)
    }

    /// A deep copy with fresh ids everywhere (including the root).
    pub fn deep_copy_fresh(&self) -> DataTree {
        let mut out = DataTree::new(self.root_label());
        for c in self.children_iter(self.root_id()).expect("root") {
            out.graft_copy(out.root_id(), self, c).expect("graft");
        }
        out
    }

    /// Structural equality **ignoring node ids** and sibling order: same
    /// shape and labels. This is isomorphism of the underlying labeled
    /// unordered trees.
    pub fn structurally_eq(&self, other: &DataTree) -> bool {
        self.canonical_form() == other.canonical_form()
    }

    /// Equality of identified trees: same node ids, labels and parent
    /// relation (sibling order still ignored — the model is unordered).
    pub fn identified_eq(&self, other: &DataTree) -> bool {
        if self.live != other.live {
            return false;
        }
        for n in self.nodes() {
            let Ok(on) = other.node(n.id) else { return false };
            if on.label != n.label {
                return false;
            }
            let p = self.parent(n.id).expect("live node");
            let op = other.parent(n.id).expect("live node");
            if p != op {
                return false;
            }
        }
        true
    }

    /// A canonical string form invariant under sibling reordering and id
    /// renaming. Used for structural hashing and equality.
    pub fn canonical_form(&self) -> String {
        self.canonical_form_slot(self.root)
    }

    /// [`canonical_form`](Self::canonical_form) of the subtree rooted at
    /// `id` — the one canonicalization grammar, shared by whole-tree
    /// hashing and by consumers that canonicalize per subtree (e.g. the
    /// id-invariant counterexample serialization in `xuc-core`).
    pub fn canonical_form_of(&self, id: NodeId) -> Result<String, TreeError> {
        Ok(self.canonical_form_slot(self.slot(id)?))
    }

    fn canonical_form_slot(&self, slot: u32) -> String {
        let mut out = String::from(self.labels[slot as usize].as_str());
        if self.first_child[slot as usize] != NIL {
            let mut kids: Vec<String> =
                self.child_slot_iter(slot).map(|c| self.canonical_form_slot(c)).collect();
            kids.sort();
            out.push('(');
            for (i, k) in kids.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
            }
            out.push(')');
        }
        out
    }

    /// Pretty indented rendering (ids and labels), for debugging and demos.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.walk_depth(&mut |slot, depth| {
            for _ in 0..depth {
                s.push_str("  ");
            }
            s.push_str(&format!("{} [{}]\n", self.labels[slot as usize], self.ids[slot as usize]));
        });
        s
    }

    /// All distinct labels occurring in the tree.
    pub fn labels(&self) -> Vec<Label> {
        let mut set = std::collections::BTreeSet::new();
        self.walk_slots(self.root, &mut |s| {
            set.insert(self.labels[s as usize]);
        });
        set.into_iter().collect()
    }
}

impl fmt::Debug for DataTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DataTree({})", crate::term::to_term(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataTree {
        let mut t = DataTree::new("root");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        t.add(b, "c").unwrap();
        t.add(a, "d").unwrap();
        t.add(t.root_id(), "e").unwrap();
        t
    }

    #[test]
    fn build_and_query_basics() {
        let t = sample();
        assert_eq!(t.len(), 6);
        assert_eq!(t.root_label(), Label::new("root"));
        assert_eq!(t.height(), 3);
        let kids = t.children(t.root_id()).unwrap();
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn label_path_excludes_root() {
        let mut t = DataTree::new("root");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        let path: Vec<String> =
            t.label_path(b).unwrap().into_iter().map(|l| l.as_str().to_string()).collect();
        assert_eq!(path, vec!["a", "b"]);
        assert!(t.label_path(t.root_id()).unwrap().is_empty());
    }

    #[test]
    fn delete_subtree_removes_descendants() {
        let mut t = DataTree::new("root");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        let c = t.add(b, "c").unwrap();
        t.delete_subtree(a).unwrap();
        assert_eq!(t.len(), 1);
        assert!(!t.contains(a));
        assert!(!t.contains(b));
        assert!(!t.contains(c));
    }

    #[test]
    fn delete_node_promotes_children() {
        let mut t = DataTree::new("root");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        t.delete_node(a).unwrap();
        assert!(t.contains(b));
        assert_eq!(t.parent(b).unwrap(), Some(t.root_id()));
    }

    #[test]
    fn move_node_rejects_cycles() {
        let mut t = DataTree::new("root");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        let err = t.move_node(a, b).unwrap_err();
        assert!(matches!(err, TreeError::WouldCreateCycle { .. }));
    }

    #[test]
    fn move_node_reparents() {
        let mut t = DataTree::new("root");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(t.root_id(), "b").unwrap();
        let c = t.add(a, "c").unwrap();
        t.move_node(c, b).unwrap();
        assert_eq!(t.parent(c).unwrap(), Some(b));
        assert!(t.children(a).unwrap().is_empty());
    }

    #[test]
    fn structural_eq_ignores_order_and_ids() {
        let mut t1 = DataTree::new("r");
        t1.add(t1.root_id(), "a").unwrap();
        t1.add(t1.root_id(), "b").unwrap();
        let mut t2 = DataTree::new("r");
        t2.add(t2.root_id(), "b").unwrap();
        t2.add(t2.root_id(), "a").unwrap();
        assert!(t1.structurally_eq(&t2));
        assert!(!t1.identified_eq(&t2));
    }

    #[test]
    fn identified_eq_tracks_ids() {
        let t = sample();
        let u = t.clone();
        assert!(t.identified_eq(&u));
        let mut v = t.clone();
        let some_leaf = *v.node_ids().last().unwrap();
        v.delete_subtree(some_leaf).unwrap();
        assert!(!t.identified_eq(&v));
    }

    #[test]
    fn graft_preserves_and_refreshes_ids() {
        let t = sample();
        let mut host = DataTree::new("root");
        let a = t.children(t.root_id()).unwrap()[0];
        let grafted = host.graft_subtree(host.root_id(), &t, a).unwrap();
        assert_eq!(grafted, a);
        // Preserved-id graft collides on second attempt.
        assert!(matches!(
            host.graft_subtree(host.root_id(), &t, a),
            Err(TreeError::DuplicateId(_))
        ));
        // Fresh-id graft never collides.
        let copy = host.graft_copy(host.root_id(), &t, a).unwrap();
        assert_ne!(copy, a);
        assert!(host.subtree(copy).unwrap().structurally_eq(&t.subtree(a).unwrap()));
    }

    #[test]
    fn failed_graft_leaves_tree_untouched() {
        let t = sample();
        let a = t.children(t.root_id()).unwrap()[0];
        let mut host = DataTree::new("root");
        host.graft_subtree(host.root_id(), &t, a).unwrap();
        let before = host.render();
        let _ = host.graft_subtree(host.root_id(), &t, a);
        assert_eq!(host.render(), before);
    }

    #[test]
    fn subtree_extraction() {
        let t = sample();
        let a = t.children(t.root_id()).unwrap()[0];
        let sub = t.subtree(a).unwrap();
        assert_eq!(sub.root_id(), a);
        assert_eq!(sub.len(), 4);
    }

    #[test]
    fn replace_id_swaps_identity() {
        let mut t = sample();
        let a = t.children(t.root_id()).unwrap()[0];
        let fresh = NodeId::fresh();
        t.replace_id(a, fresh).unwrap();
        assert!(!t.contains(a));
        assert!(t.contains(fresh));
        assert_eq!(t.label(fresh).unwrap(), Label::new("a"));
    }

    #[test]
    fn detach_behaves_like_delete_until_reattached() {
        let t = sample();
        let a = t.children(t.root_id()).unwrap()[0];
        let mut deleted = t.clone();
        deleted.delete_subtree(a).unwrap();
        let mut detached = t.clone();
        let token = detached.detach_subtree(a).unwrap();
        // While detached: identical observable state to deletion.
        assert!(detached.identified_eq(&deleted));
        assert_eq!(detached.len(), deleted.len());
        assert!(!detached.contains(a));
        // Reattach restores the original exactly.
        detached.reattach_subtree(token).unwrap();
        assert!(detached.identified_eq(&t));
        assert!(detached.contains(a));
    }

    #[test]
    fn splice_behaves_like_delete_node_until_restored() {
        let t = sample();
        let a = t.children(t.root_id()).unwrap()[0];
        let mut deleted = t.clone();
        deleted.delete_node(a).unwrap();
        let mut spliced = t.clone();
        let token = spliced.splice_node(a).unwrap();
        assert!(spliced.identified_eq(&deleted));
        assert!(!spliced.contains(a));
        spliced.unsplice_node(token).unwrap();
        assert!(spliced.identified_eq(&t));
    }

    #[test]
    fn detach_root_refused() {
        let mut t = sample();
        assert!(matches!(t.detach_subtree(t.root_id()), Err(TreeError::RootImmovable)));
        assert!(matches!(t.splice_node(t.root_id()), Err(TreeError::RootImmovable)));
    }

    #[test]
    fn edits_on_top_of_detached_state_round_trip() {
        let t = sample();
        let kids = t.children(t.root_id()).unwrap();
        let (a, e) = (kids[0], kids[1]);
        let mut work = t.clone();
        let token = work.detach_subtree(a).unwrap();
        // Mutations while detached (on live nodes) are fine...
        let extra = work.add(e, "extra").unwrap();
        work.relabel(e, "e2").unwrap();
        // ...and unwinding in LIFO order restores the original.
        work.relabel(e, "e").unwrap();
        work.delete_subtree(extra).unwrap();
        work.reattach_subtree(token).unwrap();
        assert!(work.identified_eq(&t));
    }

    #[test]
    fn preorder_snapshot_parents_precede_children() {
        let t = sample();
        let flat = t.preorder_snapshot();
        assert_eq!(flat.len(), t.len());
        assert_eq!(flat[0].0, t.root_id());
        assert_eq!(flat[0].2, None);
        for (i, (id, label, parent)) in flat.iter().enumerate().skip(1) {
            let p = parent.expect("non-root has a parent index");
            assert!(p < i, "parents precede children");
            assert_eq!(t.parent(*id).unwrap(), Some(flat[p].0));
            assert_eq!(t.label(*id).unwrap(), *label);
        }
    }

    #[test]
    fn deep_copy_fresh_is_isomorphic_but_disjoint() {
        let t = sample();
        let c = t.deep_copy_fresh();
        assert!(t.structurally_eq(&c));
        for id in c.node_ids() {
            assert!(!t.contains(id));
        }
    }

    // ——— arena-specific behavior ———

    #[test]
    fn children_iter_matches_children_and_does_not_allocate_results() {
        let t = sample();
        for id in t.node_ids() {
            let via_vec = t.children(id).unwrap();
            let via_iter: Vec<NodeId> = t.children_iter(id).unwrap().collect();
            assert_eq!(via_vec, via_iter);
            let mut via_each = Vec::new();
            t.for_each_child(id, |n| via_each.push(n.id)).unwrap();
            assert_eq!(via_vec, via_each);
        }
        assert!(t.children_iter(NodeId::from_raw(999_999)).is_err());
    }

    #[test]
    fn delete_then_insert_reuses_slot() {
        let mut t = sample();
        let cap = t.slot_capacity();
        let e = t.children(t.root_id()).unwrap()[1];
        t.delete_subtree(e).unwrap();
        assert_eq!(t.free_slots(), 1);
        t.add(t.root_id(), "e2").unwrap();
        assert_eq!(t.free_slots(), 0);
        assert_eq!(t.slot_capacity(), cap, "insertion after delete must reuse the freed slot");
    }

    #[test]
    fn churn_capacity_bounded_by_peak_live() {
        // The headline leak regression: 10k insert+delete cycles of a
        // 3-node subtree. The historical `Vec<Option<NodeData>>` arena
        // left a permanent hole per deleted node (capacity ~30k here);
        // the free-listed arena must stay at the peak live count.
        let mut t = DataTree::new("root");
        let hub = t.add(t.root_id(), "hub").unwrap();
        let mut peak = t.len();
        for _ in 0..10_000 {
            let s = t.add(hub, "s").unwrap();
            t.add(s, "x").unwrap();
            t.add(s, "y").unwrap();
            peak = peak.max(t.len());
            t.delete_subtree(s).unwrap();
        }
        assert_eq!(t.len(), 2);
        assert!(
            t.slot_capacity() <= peak,
            "arena capacity {} leaked past peak live {}",
            t.slot_capacity(),
            peak
        );
    }

    #[test]
    fn churn_with_delete_node_is_bounded_too() {
        let mut t = DataTree::new("root");
        let hub = t.add(t.root_id(), "hub").unwrap();
        let keep = t.add(hub, "keep").unwrap();
        let mut peak = t.len();
        for i in 0..10_000 {
            let mid = t.add(hub, "mid").unwrap();
            t.move_node(keep, mid).unwrap();
            peak = peak.max(t.len());
            // Splice `mid` out: `keep` is promoted back under `hub`.
            t.delete_node(mid).unwrap();
            assert_eq!(t.parent(keep).unwrap(), Some(hub), "iteration {i}");
        }
        assert!(
            t.slot_capacity() <= peak,
            "arena capacity {} leaked past peak live {}",
            t.slot_capacity(),
            peak
        );
    }

    #[test]
    fn stale_detach_token_rejected_after_slot_reuse() {
        // delete → reuse → undo: the classic ABA interleaving. The token's
        // recorded parent slot is freed and recycled for an unrelated
        // node; the generation tag must reject the reattach.
        let mut t = DataTree::new("r");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        let token = t.detach_subtree(b).unwrap();
        t.delete_subtree(a).unwrap(); // frees a's slot (b is parked, not freed)
        let c = t.add(t.root_id(), "c").unwrap(); // recycles a's slot
        let before = t.render();
        assert!(matches!(t.reattach_subtree(token), Err(TreeError::StaleToken)));
        assert_eq!(t.render(), before, "failed reattach must leave the tree untouched");
        assert!(t.contains(c));
        assert!(!t.contains(b));
    }

    #[test]
    fn stale_splice_token_rejected_after_slot_reuse() {
        let mut t = DataTree::new("r");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        t.add(b, "c").unwrap();
        let token = t.splice_node(b).unwrap();
        // Deleting `a` frees both a's and (promoted) c's slots.
        t.delete_subtree(a).unwrap();
        t.add(t.root_id(), "x").unwrap(); // recycles a freed slot
        let before = t.render();
        assert!(matches!(t.unsplice_node(token), Err(TreeError::StaleToken)));
        assert_eq!(t.render(), before, "failed unsplice must leave the tree untouched");
    }

    #[test]
    fn stale_splice_token_rejected_when_promoted_child_recycled() {
        // Parent stays alive; only a promoted child is deleted and its
        // slot recycled. The per-child generation check must catch it.
        let mut t = DataTree::new("r");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        let c = t.add(b, "c").unwrap();
        let token = t.splice_node(b).unwrap(); // c promoted under a
        t.delete_subtree(c).unwrap(); // frees c's slot
        t.add(a, "d").unwrap(); // recycles it
        assert!(matches!(t.unsplice_node(token), Err(TreeError::StaleToken)));
    }

    #[test]
    fn deep_tree_traversals_are_iterative() {
        // A 60k-deep chain overflows the 2MiB test-thread stack under the
        // historical recursive walkers; the sibling-chain walkers must
        // handle it. (Build, snapshot, height, then bulk delete.)
        let mut t = DataTree::new("root");
        let top = t.add(t.root_id(), "n").unwrap();
        let mut cur = top;
        for _ in 0..60_000 {
            cur = t.add(cur, "n").unwrap();
        }
        assert_eq!(t.height(), 60_001);
        let flat = t.preorder_snapshot();
        assert_eq!(flat.len(), t.len());
        let nodes = t.subtree_nodes(top).unwrap();
        assert_eq!(nodes.len(), 60_001);
        t.delete_subtree(top).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.free_slots(), 60_001);
    }

    #[test]
    fn detach_reattach_preserves_capacity_and_generations() {
        let t = sample();
        let a = t.children(t.root_id()).unwrap()[0];
        let mut work = t.clone();
        let cap = work.slot_capacity();
        for _ in 0..1_000 {
            let token = work.detach_subtree(a).unwrap();
            work.reattach_subtree(token).unwrap();
        }
        assert_eq!(work.slot_capacity(), cap);
        assert!(work.identified_eq(&t));
        assert_eq!(work.render(), t.render());
    }
}
