//! The unordered data tree (Def. 2.1).
//!
//! A [`DataTree`] is an arena of nodes, each carrying a [`NodeId`] and a
//! [`Label`]. Children are stored in a `Vec` but the tree is semantically
//! *unordered*: structural comparison and hashing ignore sibling order.
//!
//! The root is an ordinary node; the paper treats it specially only in the
//! query language (no predicates on the root), not in the data model.

use crate::label::Label;
use crate::node::NodeId;
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;

thread_local! {
    /// Per-thread count of full pre-order walks performed by
    /// [`DataTree::preorder_snapshot_into`] (and its allocating wrapper).
    /// Tests use the delta of [`preorder_walk_count`] to assert that
    /// edit-proportional refresh paths really do avoid O(n) re-walks;
    /// thread-local so concurrently running tests (or search shards)
    /// cannot inflate each other's deltas.
    static PREORDER_WALKS: Cell<u64> = const { Cell::new(0) };
}

/// The number of full pre-order snapshot walks performed so far **on the
/// calling thread**. Monotone; only deltas are meaningful.
pub fn preorder_walk_count() -> u64 {
    PREORDER_WALKS.with(Cell::get)
}

/// Errors raised by tree manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The referenced node id is not present in this tree.
    NodeNotFound(NodeId),
    /// The node id is already present in this tree (ids must be unique).
    DuplicateId(NodeId),
    /// The operation would detach or re-attach the root.
    RootImmovable,
    /// Moving `node` under `target` would create a cycle
    /// (`target` is a descendant of `node`).
    WouldCreateCycle { node: NodeId, target: NodeId },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NodeNotFound(id) => write!(f, "node {id} not found in tree"),
            TreeError::DuplicateId(id) => write!(f, "node id {id} already present in tree"),
            TreeError::RootImmovable => write!(f, "the root node cannot be moved or removed"),
            TreeError::WouldCreateCycle { node, target } => {
                write!(f, "moving {node} under its descendant {target} would create a cycle")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[derive(Debug, Clone)]
struct NodeData {
    id: NodeId,
    label: Label,
    parent: Option<usize>,
    children: Vec<usize>,
}

/// A lightweight view of a node: its id and label, as in the paper where a
/// node *is* the pair `(id, label)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    pub id: NodeId,
    pub label: Label,
}

/// Opaque restore token for [`DataTree::detach_subtree`]. Valid only on
/// the issuing tree, consumed LIFO by [`DataTree::reattach_subtree`].
#[derive(Debug)]
pub struct DetachToken {
    slot: usize,
    parent_slot: usize,
    /// Position in the parent's child list, restored on reattach so that
    /// an apply/undo round trip reproduces the original child order (the
    /// tree is semantically unordered, but deterministic consumers — the
    /// sharded search — rely on undo being an *exact* inverse).
    child_index: usize,
    slots: Vec<usize>,
}

/// Opaque restore token for [`DataTree::splice_node`]. Valid only on the
/// issuing tree, consumed LIFO by [`DataTree::unsplice_node`].
#[derive(Debug)]
pub struct SpliceToken {
    slot: usize,
    parent_slot: usize,
    /// Position in the parent's child list (see [`DetachToken`]).
    child_index: usize,
    child_slots: Vec<usize>,
    id: NodeId,
}

impl DetachToken {
    /// The detached subtree's former parent (for edit-scope reporting).
    pub(crate) fn parent_id(&self, tree: &DataTree) -> NodeId {
        tree.data(self.parent_slot).id
    }
}

impl SpliceToken {
    /// The spliced node's former parent (for edit-scope reporting).
    pub(crate) fn parent_id(&self, tree: &DataTree) -> NodeId {
        tree.data(self.parent_slot).id
    }
}

/// An unordered data tree with uniquely identified nodes.
#[derive(Clone)]
pub struct DataTree {
    nodes: Vec<Option<NodeData>>,
    root: usize,
    by_id: HashMap<NodeId, usize>,
    live: usize,
}

impl DataTree {
    /// Creates a tree consisting of a single root node with a fresh id.
    pub fn new(root_label: impl Into<Label>) -> Self {
        Self::with_root_id(NodeId::fresh(), root_label)
    }

    /// Creates a tree consisting of a single root node with the given id.
    pub fn with_root_id(id: NodeId, root_label: impl Into<Label>) -> Self {
        let root = NodeData { id, label: root_label.into(), parent: None, children: Vec::new() };
        let mut by_id = HashMap::new();
        by_id.insert(id, 0);
        DataTree { nodes: vec![Some(root)], root: 0, by_id, live: 1 }
    }

    fn slot(&self, id: NodeId) -> Result<usize, TreeError> {
        self.by_id.get(&id).copied().ok_or(TreeError::NodeNotFound(id))
    }

    fn data(&self, slot: usize) -> &NodeData {
        self.nodes[slot].as_ref().expect("live slot")
    }

    fn data_mut(&mut self, slot: usize) -> &mut NodeData {
        self.nodes[slot].as_mut().expect("live slot")
    }

    /// The root node's id.
    pub fn root_id(&self) -> NodeId {
        self.data(self.root).id
    }

    /// The root node's label.
    pub fn root_label(&self) -> Label {
        self.data(self.root).label
    }

    /// Number of live nodes (including the root).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff the tree consists of the root only.
    pub fn is_empty(&self) -> bool {
        self.live == 1
    }

    /// Does this tree contain a node with this id?
    pub fn contains(&self, id: NodeId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// The label of `id`.
    pub fn label(&self, id: NodeId) -> Result<Label, TreeError> {
        Ok(self.data(self.slot(id)?).label)
    }

    /// The node view `(id, label)` of `id`.
    pub fn node(&self, id: NodeId) -> Result<NodeRef, TreeError> {
        let d = self.data(self.slot(id)?);
        Ok(NodeRef { id: d.id, label: d.label })
    }

    /// The parent of `id`, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Result<Option<NodeId>, TreeError> {
        let d = self.data(self.slot(id)?);
        Ok(d.parent.map(|p| self.data(p).id))
    }

    /// Child ids of `id` (order is incidental; the tree is unordered).
    pub fn children(&self, id: NodeId) -> Result<Vec<NodeId>, TreeError> {
        let d = self.data(self.slot(id)?);
        Ok(d.children.iter().map(|&c| self.data(c).id).collect())
    }

    /// All node views, root first, in depth-first order.
    pub fn nodes(&self) -> Vec<NodeRef> {
        let mut out = Vec::with_capacity(self.live);
        self.walk(self.root, &mut |d| {
            out.push(NodeRef { id: d.id, label: d.label });
        });
        out
    }

    /// All node ids, root first, in depth-first order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes().into_iter().map(|n| n.id).collect()
    }

    /// Pre-order traversal as `(id, label, parent_index)` triples, where
    /// `parent_index` points at an earlier entry of the returned vector
    /// (`None` for the root). This is the bulk-export used by evaluation
    /// engines to build dense snapshots in one pass, without per-node
    /// id lookups.
    pub fn preorder_snapshot(&self) -> Vec<(NodeId, Label, Option<usize>)> {
        let mut out = Vec::with_capacity(self.live);
        self.preorder_snapshot_into(&mut out);
        out
    }

    /// Like [`preorder_snapshot`](Self::preorder_snapshot), but fills a
    /// caller-owned buffer (cleared first) so repeated snapshots — e.g. an
    /// evaluator refreshing after every candidate edit — reuse one heap
    /// allocation instead of allocating a fresh triple `Vec` per call.
    pub fn preorder_snapshot_into(&self, out: &mut Vec<(NodeId, Label, Option<usize>)>) {
        fn rec(
            t: &DataTree,
            slot: usize,
            parent_index: Option<usize>,
            out: &mut Vec<(NodeId, Label, Option<usize>)>,
        ) {
            let d = t.data(slot);
            let my_index = out.len();
            out.push((d.id, d.label, parent_index));
            for &c in &d.children {
                rec(t, c, Some(my_index), out);
            }
        }
        PREORDER_WALKS.with(|c| c.set(c.get() + 1));
        out.clear();
        out.reserve(self.live);
        rec(self, self.root, None, out);
    }

    fn walk(&self, slot: usize, f: &mut impl FnMut(&NodeData)) {
        let d = self.data(slot);
        f(d);
        for &c in &d.children {
            self.walk(c, f);
        }
    }

    /// Depth of `id`: the root has depth 0.
    pub fn depth(&self, id: NodeId) -> Result<usize, TreeError> {
        let mut slot = self.slot(id)?;
        let mut depth = 0;
        while let Some(p) = self.data(slot).parent {
            slot = p;
            depth += 1;
        }
        Ok(depth)
    }

    /// Maximum depth over all nodes.
    pub fn height(&self) -> usize {
        fn rec(t: &DataTree, slot: usize) -> usize {
            let d = t.data(slot);
            d.children.iter().map(|&c| 1 + rec(t, c)).max().unwrap_or(0)
        }
        rec(self, self.root)
    }

    /// Is `anc` a proper ancestor of `desc`?
    pub fn is_proper_ancestor(&self, anc: NodeId, desc: NodeId) -> Result<bool, TreeError> {
        let anc_slot = self.slot(anc)?;
        let mut slot = self.slot(desc)?;
        while let Some(p) = self.data(slot).parent {
            if p == anc_slot {
                return Ok(true);
            }
            slot = p;
        }
        Ok(false)
    }

    /// Labels on the path from the root's *child* down to `id`, i.e. the
    /// root label is excluded. For the root itself this is empty. This is
    /// the string relevant to linear-path query membership.
    pub fn label_path(&self, id: NodeId) -> Result<Vec<Label>, TreeError> {
        let mut slot = self.slot(id)?;
        let mut path = Vec::new();
        while let Some(p) = self.data(slot).parent {
            path.push(self.data(slot).label);
            slot = p;
        }
        path.reverse();
        Ok(path)
    }

    /// Ids on the path root → `id`, inclusive of both ends.
    pub fn id_path(&self, id: NodeId) -> Result<Vec<NodeId>, TreeError> {
        let mut slot = self.slot(id)?;
        let mut path = vec![self.data(slot).id];
        while let Some(p) = self.data(slot).parent {
            slot = p;
            path.push(self.data(slot).id);
        }
        path.reverse();
        Ok(path)
    }

    /// Inserts a new leaf with a fresh id under `parent`.
    pub fn add(&mut self, parent: NodeId, label: impl Into<Label>) -> Result<NodeId, TreeError> {
        self.add_with_id(parent, NodeId::fresh(), label)
    }

    /// Inserts a new leaf with an explicit id under `parent`.
    pub fn add_with_id(
        &mut self,
        parent: NodeId,
        id: NodeId,
        label: impl Into<Label>,
    ) -> Result<NodeId, TreeError> {
        let parent_slot = self.slot(parent)?;
        if self.by_id.contains_key(&id) {
            return Err(TreeError::DuplicateId(id));
        }
        let slot = self.nodes.len();
        self.nodes.push(Some(NodeData {
            id,
            label: label.into(),
            parent: Some(parent_slot),
            children: Vec::new(),
        }));
        self.data_mut(parent_slot).children.push(slot);
        self.by_id.insert(id, slot);
        self.live += 1;
        Ok(id)
    }

    /// Changes the label of `id` (a "modification of label" update).
    pub fn relabel(&mut self, id: NodeId, label: impl Into<Label>) -> Result<(), TreeError> {
        let slot = self.slot(id)?;
        self.data_mut(slot).label = label.into();
        Ok(())
    }

    /// Replaces the node `id` by a new node with `new_id` (same label, same
    /// position, same children). This is the `I[n → n']` operation used in
    /// the proof of Theorem 3.1.
    pub fn replace_id(&mut self, id: NodeId, new_id: NodeId) -> Result<(), TreeError> {
        let slot = self.slot(id)?;
        if self.by_id.contains_key(&new_id) {
            return Err(TreeError::DuplicateId(new_id));
        }
        self.by_id.remove(&id);
        self.by_id.insert(new_id, slot);
        self.data_mut(slot).id = new_id;
        Ok(())
    }

    /// Deletes the subtree rooted at `id` (the root cannot be deleted).
    pub fn delete_subtree(&mut self, id: NodeId) -> Result<(), TreeError> {
        let slot = self.slot(id)?;
        let parent = self.data(slot).parent.ok_or(TreeError::RootImmovable)?;
        self.data_mut(parent).children.retain(|&c| c != slot);
        self.reap(slot);
        Ok(())
    }

    fn reap(&mut self, slot: usize) {
        let children = std::mem::take(&mut self.data_mut(slot).children);
        for c in children {
            self.reap(c);
        }
        let d = self.nodes[slot].take().expect("live slot");
        self.by_id.remove(&d.id);
        self.live -= 1;
    }

    /// Deletes the node `id` only, promoting its children to its parent
    /// ("splice out").
    pub fn delete_node(&mut self, id: NodeId) -> Result<(), TreeError> {
        let slot = self.slot(id)?;
        let parent = self.data(slot).parent.ok_or(TreeError::RootImmovable)?;
        let children = std::mem::take(&mut self.data_mut(slot).children);
        for &c in &children {
            self.data_mut(c).parent = Some(parent);
        }
        self.data_mut(parent).children.retain(|&c| c != slot);
        self.data_mut(parent).children.extend(children);
        let d = self.nodes[slot].take().expect("live slot");
        self.by_id.remove(&d.id);
        self.live -= 1;
        Ok(())
    }

    /// Moves the subtree rooted at `id` under `new_parent`.
    pub fn move_node(&mut self, id: NodeId, new_parent: NodeId) -> Result<(), TreeError> {
        let slot = self.slot(id)?;
        let target = self.slot(new_parent)?;
        let old_parent = self.data(slot).parent.ok_or(TreeError::RootImmovable)?;
        // Walk up from the target; hitting `slot` means `new_parent` lies in
        // the subtree being moved.
        let mut cursor = Some(target);
        while let Some(s) = cursor {
            if s == slot {
                return Err(TreeError::WouldCreateCycle { node: id, target: new_parent });
            }
            cursor = self.data(s).parent;
        }
        self.data_mut(old_parent).children.retain(|&c| c != slot);
        self.data_mut(target).children.push(slot);
        self.data_mut(slot).parent = Some(target);
        Ok(())
    }

    /// Detaches the subtree rooted at `id` without destroying it: the
    /// subtree's nodes stay in the arena but become unreachable and their
    /// ids are unregistered, so the tree behaves exactly as after
    /// [`delete_subtree`](Self::delete_subtree). The returned token
    /// restores the subtree via [`reattach_subtree`](Self::reattach_subtree).
    ///
    /// This is the undoable half of subtree deletion used by clone-free
    /// candidate search: apply → evaluate → reattach, no tree copies.
    ///
    /// Tokens are only valid on the tree that issued them and must be
    /// consumed LIFO with respect to other undoable edits; while a subtree
    /// is detached, re-inserting one of its node ids is the caller's bug
    /// (checked on reattach in debug builds).
    pub fn detach_subtree(&mut self, id: NodeId) -> Result<DetachToken, TreeError> {
        let slot = self.slot(id)?;
        let parent_slot = self.data(slot).parent.ok_or(TreeError::RootImmovable)?;
        let mut slots = Vec::new();
        self.walk_slots(slot, &mut |s| slots.push(s));
        for &s in &slots {
            let sid = self.data(s).id;
            self.by_id.remove(&sid);
        }
        self.live -= slots.len();
        let parent = self.data_mut(parent_slot);
        let child_index =
            parent.children.iter().position(|&c| c == slot).expect("child of its parent");
        parent.children.remove(child_index);
        Ok(DetachToken { slot, parent_slot, child_index, slots })
    }

    /// Restores a subtree detached by [`detach_subtree`](Self::detach_subtree),
    /// at its original position in the parent's child list — undo is an
    /// exact inverse, not merely an isomorphic one.
    pub fn reattach_subtree(&mut self, token: DetachToken) {
        let DetachToken { slot, parent_slot, child_index, slots } = token;
        for &s in &slots {
            let sid = self.data(s).id;
            debug_assert!(
                !self.by_id.contains_key(&sid),
                "id {sid} was re-inserted while its subtree was detached"
            );
            self.by_id.insert(sid, s);
        }
        self.live += slots.len();
        let parent = self.data_mut(parent_slot);
        parent.children.insert(child_index.min(parent.children.len()), slot);
    }

    /// Splices out node `id` without destroying it: its children are
    /// promoted to its parent and the node becomes unreachable, exactly as
    /// after [`delete_node`](Self::delete_node). The returned token
    /// restores it via [`unsplice_node`](Self::unsplice_node); the same
    /// LIFO discipline as [`detach_subtree`](Self::detach_subtree) applies.
    pub fn splice_node(&mut self, id: NodeId) -> Result<SpliceToken, TreeError> {
        let slot = self.slot(id)?;
        let parent_slot = self.data(slot).parent.ok_or(TreeError::RootImmovable)?;
        let child_slots = self.data(slot).children.clone();
        for &c in &child_slots {
            self.data_mut(c).parent = Some(parent_slot);
        }
        let parent = self.data_mut(parent_slot);
        let child_index =
            parent.children.iter().position(|&c| c == slot).expect("child of its parent");
        parent.children.remove(child_index);
        parent.children.extend(&child_slots);
        self.by_id.remove(&id);
        self.live -= 1;
        Ok(SpliceToken { slot, parent_slot, child_index, child_slots, id })
    }

    /// Restores a node spliced out by [`splice_node`](Self::splice_node),
    /// at its original position in the parent's child list (see
    /// [`reattach_subtree`](Self::reattach_subtree)).
    pub fn unsplice_node(&mut self, token: SpliceToken) {
        let SpliceToken { slot, parent_slot, child_index, child_slots, id } = token;
        let parent = self.data_mut(parent_slot);
        parent.children.retain(|&c| !child_slots.contains(&c));
        parent.children.insert(child_index.min(parent.children.len()), slot);
        for &c in &child_slots {
            self.data_mut(c).parent = Some(slot);
        }
        debug_assert!(
            !self.by_id.contains_key(&id),
            "id {id} was re-inserted while its node was spliced out"
        );
        self.by_id.insert(id, slot);
        self.live += 1;
    }

    /// The position of `id` in its parent's child list (`None` for the
    /// root). Crate-internal: lets undoable moves record and restore exact
    /// child order.
    pub(crate) fn child_position(&self, id: NodeId) -> Result<Option<usize>, TreeError> {
        let slot = self.slot(id)?;
        Ok(self.data(slot).parent.map(|p| {
            self.data(p).children.iter().position(|&c| c == slot).expect("child of its parent")
        }))
    }

    /// Moves `id` (already a child of its current parent) to position
    /// `index` in that parent's child list. Crate-internal counterpart of
    /// [`child_position`](Self::child_position).
    pub(crate) fn restore_child_position(&mut self, id: NodeId, index: usize) {
        let slot = self.slot(id).expect("live node");
        let Some(parent) = self.data(slot).parent else { return };
        let children = &mut self.data_mut(parent).children;
        let cur = children.iter().position(|&c| c == slot).expect("child of its parent");
        children.remove(cur);
        children.insert(index.min(children.len()), slot);
    }

    fn walk_slots(&self, slot: usize, f: &mut impl FnMut(usize)) {
        f(slot);
        for &c in &self.data(slot).children {
            self.walk_slots(c, f);
        }
    }

    /// Grafts a copy of the subtree of `other` rooted at `src` under
    /// `parent`, **preserving node ids**. Fails if any id would collide.
    pub fn graft_subtree(
        &mut self,
        parent: NodeId,
        other: &DataTree,
        src: NodeId,
    ) -> Result<NodeId, TreeError> {
        self.graft_inner(parent, other, src, false)
    }

    /// Grafts a copy of the subtree of `other` rooted at `src` under
    /// `parent`, **minting fresh ids** for every copied node (the paper's
    /// notion of a *copy*: same structure and labels, fresh ids).
    pub fn graft_copy(
        &mut self,
        parent: NodeId,
        other: &DataTree,
        src: NodeId,
    ) -> Result<NodeId, TreeError> {
        self.graft_inner(parent, other, src, true)
    }

    fn graft_inner(
        &mut self,
        parent: NodeId,
        other: &DataTree,
        src: NodeId,
        fresh: bool,
    ) -> Result<NodeId, TreeError> {
        let src_slot = other.slot(src)?;
        // Pre-validate id uniqueness when preserving ids so that a failed
        // graft leaves `self` untouched.
        if !fresh {
            let mut clash = None;
            other.walk(src_slot, &mut |d| {
                if clash.is_none() && self.by_id.contains_key(&d.id) {
                    clash = Some(d.id);
                }
            });
            if let Some(id) = clash {
                return Err(TreeError::DuplicateId(id));
            }
        }
        fn rec(
            dst: &mut DataTree,
            parent: NodeId,
            other: &DataTree,
            slot: usize,
            fresh: bool,
        ) -> Result<NodeId, TreeError> {
            let d = other.data(slot);
            let id = if fresh { NodeId::fresh() } else { d.id };
            let new_id = dst.add_with_id(parent, id, d.label)?;
            for &c in &d.children {
                rec(dst, new_id, other, c, fresh)?;
            }
            Ok(new_id)
        }
        rec(self, parent, other, src_slot, fresh)
    }

    /// The refs of the subtree rooted at `id` (inclusive), in pre-order.
    /// Cost proportional to the subtree — this is how a session captures
    /// what a pending deletion is about to remove (for
    /// [`DirtyRegion::record_removals`](crate::DirtyRegion::record_removals))
    /// without snapshotting the document.
    pub fn subtree_nodes(&self, id: NodeId) -> Result<Vec<NodeRef>, TreeError> {
        let slot = self.slot(id)?;
        let mut out = Vec::new();
        let mut stack = vec![slot];
        while let Some(s) = stack.pop() {
            let d = self.data(s);
            out.push(NodeRef { id: d.id, label: d.label });
            stack.extend(d.children.iter().rev());
        }
        Ok(out)
    }

    /// Extracts the subtree rooted at `id` as a standalone tree
    /// (ids preserved).
    pub fn subtree(&self, id: NodeId) -> Result<DataTree, TreeError> {
        let slot = self.slot(id)?;
        let d = self.data(slot);
        let mut out = DataTree::with_root_id(d.id, d.label);
        for &c in &d.children {
            let child_id = self.data(c).id;
            out.graft_subtree(d.id, self, child_id)?;
        }
        Ok(out)
    }

    /// A deep copy with fresh ids everywhere (including the root).
    pub fn deep_copy_fresh(&self) -> DataTree {
        let mut out = DataTree::new(self.root_label());
        for c in self.children(self.root_id()).expect("root") {
            out.graft_copy(out.root_id(), self, c).expect("graft");
        }
        out
    }

    /// Structural equality **ignoring node ids** and sibling order: same
    /// shape and labels. This is isomorphism of the underlying labeled
    /// unordered trees.
    pub fn structurally_eq(&self, other: &DataTree) -> bool {
        self.canonical_form() == other.canonical_form()
    }

    /// Equality of identified trees: same node ids, labels and parent
    /// relation (sibling order still ignored — the model is unordered).
    pub fn identified_eq(&self, other: &DataTree) -> bool {
        if self.live != other.live {
            return false;
        }
        for n in self.nodes() {
            let Ok(on) = other.node(n.id) else { return false };
            if on.label != n.label {
                return false;
            }
            let p = self.parent(n.id).expect("live node");
            let op = other.parent(n.id).expect("live node");
            if p != op {
                return false;
            }
        }
        true
    }

    /// A canonical string form invariant under sibling reordering and id
    /// renaming. Used for structural hashing and equality.
    pub fn canonical_form(&self) -> String {
        self.canonical_form_slot(self.root)
    }

    /// [`canonical_form`](Self::canonical_form) of the subtree rooted at
    /// `id` — the one canonicalization grammar, shared by whole-tree
    /// hashing and by consumers that canonicalize per subtree (e.g. the
    /// id-invariant counterexample serialization in `xuc-core`).
    pub fn canonical_form_of(&self, id: NodeId) -> Result<String, TreeError> {
        Ok(self.canonical_form_slot(self.slot(id)?))
    }

    fn canonical_form_slot(&self, slot: usize) -> String {
        let d = self.data(slot);
        let mut out = String::from(d.label.as_str());
        if !d.children.is_empty() {
            let mut kids: Vec<String> =
                d.children.iter().map(|&c| self.canonical_form_slot(c)).collect();
            kids.sort();
            out.push('(');
            for (i, k) in kids.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
            }
            out.push(')');
        }
        out
    }

    /// Pretty indented rendering (ids and labels), for debugging and demos.
    pub fn render(&self) -> String {
        fn rec(t: &DataTree, slot: usize, depth: usize, out: &mut String) {
            let d = t.data(slot);
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&format!("{} [{}]\n", d.label, d.id));
            for &c in &d.children {
                rec(t, c, depth + 1, out);
            }
        }
        let mut s = String::new();
        rec(self, self.root, 0, &mut s);
        s
    }

    /// All distinct labels occurring in the tree.
    pub fn labels(&self) -> Vec<Label> {
        let mut set = std::collections::BTreeSet::new();
        self.walk(self.root, &mut |d| {
            set.insert(d.label);
        });
        set.into_iter().collect()
    }
}

impl fmt::Debug for DataTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DataTree({})", crate::term::to_term(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataTree {
        let mut t = DataTree::new("root");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        t.add(b, "c").unwrap();
        t.add(a, "d").unwrap();
        t.add(t.root_id(), "e").unwrap();
        t
    }

    #[test]
    fn build_and_query_basics() {
        let t = sample();
        assert_eq!(t.len(), 6);
        assert_eq!(t.root_label(), Label::new("root"));
        assert_eq!(t.height(), 3);
        let kids = t.children(t.root_id()).unwrap();
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn label_path_excludes_root() {
        let mut t = DataTree::new("root");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        let path: Vec<String> =
            t.label_path(b).unwrap().into_iter().map(|l| l.as_str().to_string()).collect();
        assert_eq!(path, vec!["a", "b"]);
        assert!(t.label_path(t.root_id()).unwrap().is_empty());
    }

    #[test]
    fn delete_subtree_removes_descendants() {
        let mut t = DataTree::new("root");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        let c = t.add(b, "c").unwrap();
        t.delete_subtree(a).unwrap();
        assert_eq!(t.len(), 1);
        assert!(!t.contains(a));
        assert!(!t.contains(b));
        assert!(!t.contains(c));
    }

    #[test]
    fn delete_node_promotes_children() {
        let mut t = DataTree::new("root");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        t.delete_node(a).unwrap();
        assert!(t.contains(b));
        assert_eq!(t.parent(b).unwrap(), Some(t.root_id()));
    }

    #[test]
    fn move_node_rejects_cycles() {
        let mut t = DataTree::new("root");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(a, "b").unwrap();
        let err = t.move_node(a, b).unwrap_err();
        assert!(matches!(err, TreeError::WouldCreateCycle { .. }));
    }

    #[test]
    fn move_node_reparents() {
        let mut t = DataTree::new("root");
        let a = t.add(t.root_id(), "a").unwrap();
        let b = t.add(t.root_id(), "b").unwrap();
        let c = t.add(a, "c").unwrap();
        t.move_node(c, b).unwrap();
        assert_eq!(t.parent(c).unwrap(), Some(b));
        assert!(t.children(a).unwrap().is_empty());
    }

    #[test]
    fn structural_eq_ignores_order_and_ids() {
        let mut t1 = DataTree::new("r");
        t1.add(t1.root_id(), "a").unwrap();
        t1.add(t1.root_id(), "b").unwrap();
        let mut t2 = DataTree::new("r");
        t2.add(t2.root_id(), "b").unwrap();
        t2.add(t2.root_id(), "a").unwrap();
        assert!(t1.structurally_eq(&t2));
        assert!(!t1.identified_eq(&t2));
    }

    #[test]
    fn identified_eq_tracks_ids() {
        let t = sample();
        let u = t.clone();
        assert!(t.identified_eq(&u));
        let mut v = t.clone();
        let some_leaf = *v.node_ids().last().unwrap();
        v.delete_subtree(some_leaf).unwrap();
        assert!(!t.identified_eq(&v));
    }

    #[test]
    fn graft_preserves_and_refreshes_ids() {
        let t = sample();
        let mut host = DataTree::new("root");
        let a = t.children(t.root_id()).unwrap()[0];
        let grafted = host.graft_subtree(host.root_id(), &t, a).unwrap();
        assert_eq!(grafted, a);
        // Preserved-id graft collides on second attempt.
        assert!(matches!(
            host.graft_subtree(host.root_id(), &t, a),
            Err(TreeError::DuplicateId(_))
        ));
        // Fresh-id graft never collides.
        let copy = host.graft_copy(host.root_id(), &t, a).unwrap();
        assert_ne!(copy, a);
        assert!(host.subtree(copy).unwrap().structurally_eq(&t.subtree(a).unwrap()));
    }

    #[test]
    fn failed_graft_leaves_tree_untouched() {
        let t = sample();
        let a = t.children(t.root_id()).unwrap()[0];
        let mut host = DataTree::new("root");
        host.graft_subtree(host.root_id(), &t, a).unwrap();
        let before = host.render();
        let _ = host.graft_subtree(host.root_id(), &t, a);
        assert_eq!(host.render(), before);
    }

    #[test]
    fn subtree_extraction() {
        let t = sample();
        let a = t.children(t.root_id()).unwrap()[0];
        let sub = t.subtree(a).unwrap();
        assert_eq!(sub.root_id(), a);
        assert_eq!(sub.len(), 4);
    }

    #[test]
    fn replace_id_swaps_identity() {
        let mut t = sample();
        let a = t.children(t.root_id()).unwrap()[0];
        let fresh = NodeId::fresh();
        t.replace_id(a, fresh).unwrap();
        assert!(!t.contains(a));
        assert!(t.contains(fresh));
        assert_eq!(t.label(fresh).unwrap(), Label::new("a"));
    }

    #[test]
    fn detach_behaves_like_delete_until_reattached() {
        let t = sample();
        let a = t.children(t.root_id()).unwrap()[0];
        let mut deleted = t.clone();
        deleted.delete_subtree(a).unwrap();
        let mut detached = t.clone();
        let token = detached.detach_subtree(a).unwrap();
        // While detached: identical observable state to deletion.
        assert!(detached.identified_eq(&deleted));
        assert_eq!(detached.len(), deleted.len());
        assert!(!detached.contains(a));
        // Reattach restores the original exactly.
        detached.reattach_subtree(token);
        assert!(detached.identified_eq(&t));
        assert!(detached.contains(a));
    }

    #[test]
    fn splice_behaves_like_delete_node_until_restored() {
        let t = sample();
        let a = t.children(t.root_id()).unwrap()[0];
        let mut deleted = t.clone();
        deleted.delete_node(a).unwrap();
        let mut spliced = t.clone();
        let token = spliced.splice_node(a).unwrap();
        assert!(spliced.identified_eq(&deleted));
        assert!(!spliced.contains(a));
        spliced.unsplice_node(token);
        assert!(spliced.identified_eq(&t));
    }

    #[test]
    fn detach_root_refused() {
        let mut t = sample();
        assert!(matches!(t.detach_subtree(t.root_id()), Err(TreeError::RootImmovable)));
        assert!(matches!(t.splice_node(t.root_id()), Err(TreeError::RootImmovable)));
    }

    #[test]
    fn edits_on_top_of_detached_state_round_trip() {
        let t = sample();
        let kids = t.children(t.root_id()).unwrap();
        let (a, e) = (kids[0], kids[1]);
        let mut work = t.clone();
        let token = work.detach_subtree(a).unwrap();
        // Mutations while detached (on live nodes) are fine...
        let extra = work.add(e, "extra").unwrap();
        work.relabel(e, "e2").unwrap();
        // ...and unwinding in LIFO order restores the original.
        work.relabel(e, "e").unwrap();
        work.delete_subtree(extra).unwrap();
        work.reattach_subtree(token);
        assert!(work.identified_eq(&t));
    }

    #[test]
    fn preorder_snapshot_parents_precede_children() {
        let t = sample();
        let flat = t.preorder_snapshot();
        assert_eq!(flat.len(), t.len());
        assert_eq!(flat[0].0, t.root_id());
        assert_eq!(flat[0].2, None);
        for (i, (id, label, parent)) in flat.iter().enumerate().skip(1) {
            let p = parent.expect("non-root has a parent index");
            assert!(p < i, "parents precede children");
            assert_eq!(t.parent(*id).unwrap(), Some(flat[p].0));
            assert_eq!(t.label(*id).unwrap(), *label);
        }
    }

    #[test]
    fn deep_copy_fresh_is_isomorphic_but_disjoint() {
        let t = sample();
        let c = t.deep_copy_fresh();
        assert!(t.structurally_eq(&c));
        for id in c.node_ids() {
            assert!(!t.contains(id));
        }
    }
}
