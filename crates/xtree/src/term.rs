//! A compact term syntax for trees: `root(a(b,c),d)`.
//!
//! Used pervasively by tests, examples and workload generators. Node ids are
//! minted fresh on parse; an optional `label#id` form pins explicit ids so
//! paired instances `(I, J)` can share node identities:
//!
//! ```
//! use xuc_xtree::{parse_term, to_term};
//! let t = parse_term("root(patient#1(visit#2),patient#3)").unwrap();
//! assert_eq!(t.len(), 4);
//! assert_eq!(to_term(&t), "root(patient,patient(visit))");
//! ```

use crate::node::NodeId;
use crate::tree::{DataTree, TreeError};
use std::fmt;

/// Errors from [`parse_term`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermError {
    /// Unexpected character at byte offset.
    Unexpected { at: usize, found: Option<char> },
    /// An explicit id appeared twice.
    Tree(TreeError),
    /// Trailing input after the term.
    Trailing { at: usize },
    /// Empty input or empty label.
    EmptyLabel { at: usize },
}

impl fmt::Display for TermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermError::Unexpected { at, found: Some(c) } => {
                write!(f, "unexpected character {c:?} at offset {at}")
            }
            TermError::Unexpected { at, found: None } => {
                write!(f, "unexpected end of input at offset {at}")
            }
            TermError::Tree(e) => write!(f, "{e}"),
            TermError::Trailing { at } => write!(f, "trailing input at offset {at}"),
            TermError::EmptyLabel { at } => write!(f, "empty label at offset {at}"),
        }
    }
}

impl std::error::Error for TermError {}

impl From<TreeError> for TermError {
    fn from(e: TreeError) -> Self {
        TermError::Tree(e)
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<char> {
        self.src.get(self.pos).map(|&b| b as char)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn ident(&mut self) -> Result<String, TermError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-' || c == '+')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(TermError::EmptyLabel { at: start });
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos]).expect("ascii").to_string())
    }

    fn node(
        &mut self,
        tree: &mut Option<DataTree>,
        parent: Option<NodeId>,
    ) -> Result<(), TermError> {
        let label = self.ident()?;
        let explicit_id = if self.peek() == Some('#') {
            self.pos += 1;
            let digits = self.ident()?;
            let raw: u64 = digits
                .parse()
                .map_err(|_| TermError::Unexpected { at: self.pos, found: self.peek() })?;
            Some(NodeId::from_raw(raw))
        } else {
            None
        };
        let id = match (parent, tree.as_mut()) {
            (None, _) => {
                let t = match explicit_id {
                    Some(id) => DataTree::with_root_id(id, label.as_str()),
                    None => DataTree::new(label.as_str()),
                };
                let id = t.root_id();
                *tree = Some(t);
                id
            }
            (Some(p), Some(t)) => match explicit_id {
                Some(id) => t.add_with_id(p, id, label.as_str())?,
                None => t.add(p, label.as_str())?,
            },
            (Some(_), None) => unreachable!("children parsed after root"),
        };
        self.skip_ws();
        if self.peek() == Some('(') {
            self.pos += 1;
            loop {
                self.node(tree, Some(id))?;
                self.skip_ws();
                match self.peek() {
                    Some(',') => {
                        self.pos += 1;
                    }
                    Some(')') => {
                        self.pos += 1;
                        break;
                    }
                    found => return Err(TermError::Unexpected { at: self.pos, found }),
                }
            }
        }
        Ok(())
    }
}

/// Parses the compact term syntax into a [`DataTree`].
pub fn parse_term(src: &str) -> Result<DataTree, TermError> {
    let mut p = Parser { src: src.as_bytes(), pos: 0 };
    let mut tree = None;
    p.node(&mut tree, None)?;
    p.skip_ws();
    if p.pos != src.len() {
        return Err(TermError::Trailing { at: p.pos });
    }
    Ok(tree.expect("root parsed"))
}

/// Renders a tree in the compact term syntax (children sorted canonically so
/// the output is deterministic; ids are omitted).
pub fn to_term(tree: &DataTree) -> String {
    fn rec(tree: &DataTree, id: NodeId, out: &mut String) {
        out.push_str(tree.label(id).expect("live").as_str());
        let kids = tree.children(id).expect("live");
        if !kids.is_empty() {
            let mut rendered: Vec<String> = kids
                .into_iter()
                .map(|k| {
                    let mut s = String::new();
                    rec(tree, k, &mut s);
                    s
                })
                .collect();
            rendered.sort();
            out.push('(');
            for (i, r) in rendered.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(r);
            }
            out.push(')');
        }
    }
    let mut s = String::new();
    rec(tree, tree.root_id(), &mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let t = parse_term("root(a(b,c),d)").unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(to_term(&t), "root(a(b,c),d)");
    }

    #[test]
    fn canonical_ordering() {
        let t = parse_term("r(b,a)").unwrap();
        assert_eq!(to_term(&t), "r(a,b)");
    }

    #[test]
    fn explicit_ids() {
        let t = parse_term("r#10(a#11,a#12)").unwrap();
        assert!(t.contains(NodeId::from_raw(11)));
        assert!(t.contains(NodeId::from_raw(12)));
        assert_eq!(t.root_id(), NodeId::from_raw(10));
    }

    #[test]
    fn duplicate_explicit_id_rejected() {
        let err = parse_term("r(a#5,b#5)").unwrap_err();
        assert!(matches!(err, TermError::Tree(TreeError::DuplicateId(_))));
    }

    #[test]
    fn whitespace_tolerated() {
        let t = parse_term(" r ( a , b ( c ) ) ").unwrap();
        assert_eq!(to_term(&t), "r(a,b(c))");
    }

    #[test]
    fn errors_reported() {
        assert!(matches!(parse_term(""), Err(TermError::EmptyLabel { .. })));
        assert!(matches!(parse_term("r(a"), Err(TermError::Unexpected { .. })));
        assert!(matches!(parse_term("r)x"), Err(TermError::Trailing { .. })));
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::from("r");
        for _ in 0..50 {
            s.push_str("(a");
        }
        s.push_str(&")".repeat(50));
        let t = parse_term(&s).unwrap();
        assert_eq!(t.len(), 51);
        assert_eq!(t.height(), 50);
    }
}
