//! Unordered XML data-tree model for reasoning about update constraints.
//!
//! This crate implements the data model of Section 2 of *Cautis, Abiteboul,
//! Milo — "Reasoning about XML update constraints"* (PODS 2007 / JCSS 2009):
//! an (unordered) data tree is a finite tree whose nodes carry both a
//! **globally unique identifier** from an infinite domain `N` and a **label**
//! from an infinite domain `L`. A node is the pair *(id, label)*; node
//! identity is preserved across updates, which is what makes "the set of
//! selected nodes can only grow / shrink" meaningful.
//!
//! The crate provides:
//! * [`Label`] — interned labels with O(1) equality ([`label`]),
//! * [`NodeId`] — globally unique node identifiers ([`node`]),
//! * [`DataTree`] — an arena-backed unordered tree ([`tree`]),
//! * [`Update`] — the update operations of Tatarinov et al. (insert, delete,
//!   move, relabel) used by the paper to abstract document evolution
//!   ([`update`]),
//! * [`DirtyRegion`] — the union of a batch's edit scopes as disjoint dirty
//!   subtrees plus pinpoint relabel/id-swap patches, for edit-proportional
//!   delta evaluation ([`dirty`]),
//! * a compact term syntax for building trees in tests and examples
//!   ([`term`]).

pub mod dirty;
pub mod label;
pub mod node;
pub mod term;
pub mod tree;
pub mod update;

pub use dirty::{DirtyRegion, IdSwap};
pub use label::Label;
pub use node::NodeId;
pub use term::{parse_term, to_term};
pub use tree::{
    preorder_walk_count, ChildIds, DataTree, DetachToken, NodeRef, SpliceToken, TreeError,
};
pub use update::{
    apply_all, apply_undoable, apply_update, undo, EditScope, Undo, Update, UpdateError,
};
