//! Globally unique node identifiers.
//!
//! The paper's data model (Def. 2.1) gives every node an identity from an
//! infinite domain `N`, distinct from its label. Identity is what survives
//! updates: a pair of instances `(I, J)` satisfies `(q, ↑)` when every *node
//! id* selected by `q` in `I` is still selected in `J`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh ids start above `u32::MAX` so that small explicit ids used in tests
/// and serialized fixtures never collide with freshly minted ones.
static NEXT_ID: AtomicU64 = AtomicU64::new(1 << 32);

/// A globally unique node identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(u64);

impl NodeId {
    /// Mints a fresh identifier, distinct from every id minted so far in
    /// this process.
    pub fn fresh() -> Self {
        NodeId(NEXT_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Wraps an explicit value. Intended for tests and deserialization;
    /// explicit ids are not protected against collision with fresh ones,
    /// so tests should use small fixed values consistently or rely on
    /// [`NodeId::fresh`].
    pub fn from_raw(raw: u64) -> Self {
        NodeId(raw)
    }

    /// The underlying integer.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Advances the fresh-id counter past `raw` if it is not already
    /// there. Recovery paths call this after reloading persisted trees
    /// and update logs, so ids minted by [`NodeId::fresh`] after a
    /// restart never collide with ids recovered from disk.
    pub fn ensure_fresh_above(raw: u64) {
        NEXT_ID.fetch_max(raw + 1, Ordering::Relaxed);
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_distinct() {
        let a = NodeId::fresh();
        let b = NodeId::fresh();
        assert_ne!(a, b);
        assert!(b.raw() > a.raw());
        assert!(a.raw() > u32::MAX as u64);
    }

    #[test]
    fn ensure_fresh_above_prevents_collisions() {
        let high = NodeId::fresh().raw() + 1000;
        NodeId::ensure_fresh_above(high);
        assert!(NodeId::fresh().raw() > high);
        // Lower watermarks never move the counter backwards.
        NodeId::ensure_fresh_above(5);
        assert!(NodeId::fresh().raw() > high);
    }

    #[test]
    fn raw_roundtrip() {
        let n = NodeId::from_raw(42);
        assert_eq!(n.raw(), 42);
        assert_eq!(format!("{n}"), "n42");
    }
}
