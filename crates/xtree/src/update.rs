//! Update operations over data trees.
//!
//! Following the paper (and Tatarinov et al. \[27\]), an *update* is a sequence
//! of node insertions, deletions, moves and label modifications; the paper
//! then abstracts a whole update sequence as the pair of trees `(I, J)`.
//! This module provides the concrete operations so examples and workload
//! generators can *produce* such pairs by actually editing documents.
//!
//! # The edit-scope protocol
//!
//! [`apply_undoable`] and [`undo`] return an [`EditScope`] classifying
//! what the edit touched, so snapshot holders (`xuc_xpath::Evaluator`,
//! and through it the counterexample search) can re-sync proportionally
//! to the edit instead of re-walking the tree:
//!
//! * [`EditScope::Relabel`] — only one node's label changed (`from` →
//!   `to`); ids, parents and the pre-order layout are untouched, so a
//!   derived snapshot patches one label cell and two cached bitset words.
//! * [`EditScope::ReplaceId`] — only one node's identity changed (`from`
//!   → `to`); a derived snapshot patches one id-index entry.
//! * [`EditScope::Structural`] — the pre-order layout changed; `root` is
//!   the deepest node whose subtree contains every change (the LCA of
//!   source and target parent for moves, `None` when unknown), and a full
//!   re-snapshot is always a correct response.
//!
//! # The position-restoration invariant
//!
//! [`undo`] is an **exact** inverse, not merely an isomorphic one: every
//! [`Undo`] token records the child *position* of what it detached,
//! spliced or moved ([`DetachToken`]/[`SpliceToken`] inside the tree,
//! `old_index` in [`Undo::MoveBack`]), and restores it on revert. After
//! any apply/undo round trip the tree is bit-identical to its former
//! self — same child order, not just the same unordered tree. The
//! deterministic sharded counterexample search relies on this: a worker's
//! working tree must not depend on *which* candidates it happened to try
//! before, or the search result would vary with scheduling.

use crate::label::Label;
use crate::node::NodeId;
use crate::tree::{DataTree, DetachToken, SpliceToken, TreeError};
use std::fmt;

/// A single primitive update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Update {
    /// Insert a fresh leaf `(id, label)` under `parent`.
    InsertLeaf { parent: NodeId, id: NodeId, label: Label },
    /// Delete the whole subtree rooted at `node`.
    DeleteSubtree { node: NodeId },
    /// Delete `node` only; its children are promoted to its parent.
    DeleteNode { node: NodeId },
    /// Move the subtree rooted at `node` under `new_parent`.
    Move { node: NodeId, new_parent: NodeId },
    /// Change the label of `node`.
    Relabel { node: NodeId, label: Label },
    /// Replace `node`'s identity by `new_id`, keeping label, position and
    /// children (the `I[n → n']` operation of Theorem 3.1).
    ReplaceId { node: NodeId, new_id: NodeId },
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::InsertLeaf { parent, id, label } => {
                write!(f, "insert {label}[{id}] under {parent}")
            }
            Update::DeleteSubtree { node } => write!(f, "delete subtree {node}"),
            Update::DeleteNode { node } => write!(f, "delete node {node}"),
            Update::Move { node, new_parent } => write!(f, "move {node} under {new_parent}"),
            Update::Relabel { node, label } => write!(f, "relabel {node} to {label}"),
            Update::ReplaceId { node, new_id } => write!(f, "replace id {node} by {new_id}"),
        }
    }
}

/// Errors from applying updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The underlying tree operation failed.
    Tree(TreeError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Tree(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<TreeError> for UpdateError {
    fn from(e: TreeError) -> Self {
        UpdateError::Tree(e)
    }
}

/// Applies one update in place.
pub fn apply_update(tree: &mut DataTree, update: &Update) -> Result<(), UpdateError> {
    match update {
        Update::InsertLeaf { parent, id, label } => {
            tree.add_with_id(*parent, *id, *label)?;
        }
        Update::DeleteSubtree { node } => tree.delete_subtree(*node)?,
        Update::DeleteNode { node } => tree.delete_node(*node)?,
        Update::Move { node, new_parent } => tree.move_node(*node, *new_parent)?,
        Update::Relabel { node, label } => tree.relabel(*node, *label)?,
        Update::ReplaceId { node, new_id } => tree.replace_id(*node, *new_id)?,
    }
    Ok(())
}

/// How an applied (or undone) edit affected the tree, from the point of
/// view of derived snapshots (evaluator id indexes, label bitset caches,
/// preorder layouts).
///
/// [`apply_undoable`] returns the scope of the edit it applied and
/// [`undo`] returns the scope of the reversal, so snapshot holders can
/// refresh **proportionally to the edit**: a relabel patches one label
/// cell and two bitset words, an id swap patches one index entry, and
/// only genuinely structural edits force a re-walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditScope {
    /// Only `node`'s label changed (`from` → `to`): ids, parents and the
    /// preorder layout are untouched.
    Relabel { node: NodeId, from: Label, to: Label },
    /// Only one node's identity changed (`from` → `to`): labels and the
    /// preorder layout are untouched.
    ReplaceId { from: NodeId, to: NodeId },
    /// The preorder layout changed. `root` is the deepest node whose
    /// subtree contains every change (`None` when unknown); a full
    /// re-snapshot is always a correct response.
    Structural { root: Option<NodeId> },
}

impl EditScope {
    /// Did the edit change the preorder layout (as opposed to patching a
    /// label or an identity in place)?
    pub fn is_structural(&self) -> bool {
        matches!(self, EditScope::Structural { .. })
    }
}

/// The deepest common ancestor of `a` and `b` (both must be live).
/// Allocation-free — this runs on every move apply/undo in the search's
/// candidate loop.
fn lca(tree: &DataTree, mut a: NodeId, mut b: NodeId) -> Option<NodeId> {
    let mut da = tree.depth(a).ok()?;
    let mut db = tree.depth(b).ok()?;
    while da > db {
        a = tree.parent(a).ok()??;
        da -= 1;
    }
    while db > da {
        b = tree.parent(b).ok()??;
        db -= 1;
    }
    while a != b {
        a = tree.parent(a).ok()??;
        b = tree.parent(b).ok()??;
    }
    Some(a)
}

/// The inverse record of one applied [`Update`], produced by
/// [`apply_undoable`] and consumed (LIFO) by [`undo`].
///
/// Deletions are recorded as *detachments* — the removed nodes stay parked
/// in the tree's arena — so a full apply/undo round trip performs **no
/// tree clones and no node reconstruction**. This is what lets candidate
/// searches edit one working tree in place instead of cloning per
/// candidate.
///
/// Undo is an **exact** inverse, not merely an isomorphic one: child
/// positions are recorded and restored, so an apply/undo round trip
/// reproduces the original child order. Deterministic consumers (the
/// sharded counterexample search) rely on the working tree being
/// bit-identical to the seed after every round trip, independent of which
/// candidates were tried before.
#[derive(Debug)]
pub enum Undo {
    RemoveLeaf { id: NodeId },
    Reattach(DetachToken),
    Unsplice(SpliceToken),
    MoveBack { node: NodeId, old_parent: NodeId, old_index: usize },
    Relabel { node: NodeId, old: Label },
    RestoreId { current: NodeId, old: NodeId },
}

/// Applies one update in place and returns the token that undoes it plus
/// the [`EditScope`] describing what the edit touched (so snapshot holders
/// can refresh proportionally to the edit instead of re-walking).
pub fn apply_undoable(
    tree: &mut DataTree,
    update: &Update,
) -> Result<(Undo, EditScope), UpdateError> {
    Ok(match update {
        Update::InsertLeaf { parent, id, label } => {
            tree.add_with_id(*parent, *id, *label)?;
            (Undo::RemoveLeaf { id: *id }, EditScope::Structural { root: Some(*parent) })
        }
        Update::DeleteSubtree { node } => {
            let token = tree.detach_subtree(*node)?;
            let root = Some(token.parent_id(tree));
            (Undo::Reattach(token), EditScope::Structural { root })
        }
        Update::DeleteNode { node } => {
            let token = tree.splice_node(*node)?;
            let root = Some(token.parent_id(tree));
            (Undo::Unsplice(token), EditScope::Structural { root })
        }
        Update::Move { node, new_parent } => {
            let old_parent =
                tree.parent(*node)?.ok_or(UpdateError::Tree(TreeError::RootImmovable))?;
            let old_index = tree.child_position(*node)?.expect("non-root has a position");
            tree.move_node(*node, *new_parent)?;
            let root = lca(tree, old_parent, *new_parent);
            (Undo::MoveBack { node: *node, old_parent, old_index }, EditScope::Structural { root })
        }
        Update::Relabel { node, label } => {
            let old = tree.label(*node)?;
            tree.relabel(*node, *label)?;
            (
                Undo::Relabel { node: *node, old },
                EditScope::Relabel { node: *node, from: old, to: *label },
            )
        }
        Update::ReplaceId { node, new_id } => {
            tree.replace_id(*node, *new_id)?;
            (
                Undo::RestoreId { current: *new_id, old: *node },
                EditScope::ReplaceId { from: *node, to: *new_id },
            )
        }
    })
}

/// Reverts one update recorded by [`apply_undoable`] and returns the
/// [`EditScope`] of the reversal (a relabel undoes as a relabel, a
/// structural edit as a structural edit). Undo tokens must be consumed in
/// LIFO order relative to the applies they revert.
pub fn undo(tree: &mut DataTree, token: Undo) -> Result<EditScope, UpdateError> {
    Ok(match token {
        Undo::RemoveLeaf { id } => {
            let parent = tree.parent(id)?;
            tree.delete_subtree(id)?;
            EditScope::Structural { root: parent }
        }
        Undo::Reattach(t) => {
            let root = Some(t.parent_id(tree));
            tree.reattach_subtree(t)?;
            EditScope::Structural { root }
        }
        Undo::Unsplice(t) => {
            let root = Some(t.parent_id(tree));
            tree.unsplice_node(t)?;
            EditScope::Structural { root }
        }
        Undo::MoveBack { node, old_parent, old_index } => {
            let cur_parent =
                tree.parent(node)?.ok_or(UpdateError::Tree(TreeError::RootImmovable))?;
            tree.move_node(node, old_parent)?;
            tree.restore_child_position(node, old_index);
            let root = lca(tree, old_parent, cur_parent);
            EditScope::Structural { root }
        }
        Undo::Relabel { node, old } => {
            let from = tree.label(node)?;
            tree.relabel(node, old)?;
            EditScope::Relabel { node, from, to: old }
        }
        Undo::RestoreId { current, old } => {
            tree.replace_id(current, old)?;
            EditScope::ReplaceId { from: current, to: old }
        }
    })
}

/// Applies a sequence of updates to a copy of `before`, returning the
/// resulting `(I, J)` pair convention: `(before, after)`.
pub fn apply_all(before: &DataTree, updates: &[Update]) -> Result<DataTree, UpdateError> {
    let mut after = before.clone();
    for u in updates {
        apply_update(&mut after, u)?;
    }
    Ok(after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_term;

    #[test]
    fn sequence_produces_pair() {
        let before = parse_term("root(patient#1(visit#2),patient#3)").unwrap();
        let fresh = NodeId::fresh();
        let after = apply_all(
            &before,
            &[
                Update::DeleteSubtree { node: NodeId::from_raw(2) },
                Update::InsertLeaf {
                    parent: NodeId::from_raw(3),
                    id: fresh,
                    label: Label::new("visit"),
                },
            ],
        )
        .unwrap();
        assert!(before.contains(NodeId::from_raw(2)));
        assert!(!after.contains(NodeId::from_raw(2)));
        assert!(after.contains(fresh));
        // The before tree is untouched.
        assert_eq!(before.len(), 4);
    }

    #[test]
    fn relabel_and_move() {
        let before = parse_term("r(a#1(b#2),c#3)").unwrap();
        let after = apply_all(
            &before,
            &[
                Update::Relabel { node: NodeId::from_raw(2), label: Label::new("x") },
                Update::Move { node: NodeId::from_raw(2), new_parent: NodeId::from_raw(3) },
            ],
        )
        .unwrap();
        assert_eq!(after.label(NodeId::from_raw(2)).unwrap(), Label::new("x"));
        assert_eq!(after.parent(NodeId::from_raw(2)).unwrap(), Some(NodeId::from_raw(3)));
    }

    #[test]
    fn failing_update_reports_error() {
        let before = parse_term("r(a#1)").unwrap();
        let err = apply_all(&before, &[Update::DeleteSubtree { node: NodeId::from_raw(99) }])
            .unwrap_err();
        assert!(matches!(err, UpdateError::Tree(TreeError::NodeNotFound(_))));
    }

    #[test]
    fn display_updates() {
        let u = Update::DeleteSubtree { node: NodeId::from_raw(7) };
        assert_eq!(format!("{u}"), "delete subtree n7");
    }

    #[test]
    fn apply_undo_round_trips_every_op() {
        let original = parse_term("r(a#1(b#2(c#3),d#4),e#5)").unwrap();
        let fresh = NodeId::fresh();
        let ops = [
            Update::InsertLeaf {
                parent: NodeId::from_raw(4),
                id: NodeId::fresh(),
                label: Label::new("new"),
            },
            Update::DeleteSubtree { node: NodeId::from_raw(1) },
            Update::DeleteNode { node: NodeId::from_raw(2) },
            Update::Move { node: NodeId::from_raw(2), new_parent: NodeId::from_raw(5) },
            Update::Relabel { node: NodeId::from_raw(3), label: Label::new("x") },
            Update::ReplaceId { node: NodeId::from_raw(4), new_id: fresh },
        ];
        let mut work = original.clone();
        for op in &ops {
            let (token, scope) = apply_undoable(&mut work, op).unwrap();
            // The edit is observable...
            assert!(!work.identified_eq(&original), "{op} must change the tree");
            // ...and fully reverted by its token, with a scope of the same
            // structural class as the apply.
            let undo_scope = undo(&mut work, token).unwrap();
            assert_eq!(scope.is_structural(), undo_scope.is_structural(), "{op}");
            assert!(work.identified_eq(&original), "undo of {op} must restore");
        }
    }

    #[test]
    fn apply_undoable_matches_apply_update() {
        let before = parse_term("r(a#1(b#2),c#3)").unwrap();
        for op in [
            Update::DeleteSubtree { node: NodeId::from_raw(1) },
            Update::DeleteNode { node: NodeId::from_raw(1) },
            Update::Move { node: NodeId::from_raw(2), new_parent: NodeId::from_raw(3) },
            Update::Relabel { node: NodeId::from_raw(2), label: Label::new("y") },
        ] {
            let mut via_plain = before.clone();
            apply_update(&mut via_plain, &op).unwrap();
            let mut via_undoable = before.clone();
            let (_token, _scope) = apply_undoable(&mut via_undoable, &op).unwrap();
            assert!(via_plain.identified_eq(&via_undoable), "{op}");
        }
    }

    #[test]
    fn nested_undo_stack_restores_in_lifo_order() {
        let original = parse_term("r(a#1(b#2(c#3)),d#4)").unwrap();
        let mut work = original.clone();
        let mut stack = Vec::new();
        for op in [
            Update::Relabel { node: NodeId::from_raw(4), label: Label::new("w") },
            Update::DeleteNode { node: NodeId::from_raw(2) },
            Update::Move { node: NodeId::from_raw(3), new_parent: NodeId::from_raw(4) },
            Update::DeleteSubtree { node: NodeId::from_raw(3) },
        ] {
            stack.push(apply_undoable(&mut work, &op).unwrap().0);
        }
        while let Some(token) = stack.pop() {
            undo(&mut work, token).unwrap();
        }
        assert!(work.identified_eq(&original));
    }

    #[test]
    fn edit_scopes_classify_and_locate() {
        let mut t = parse_term("r(a#1(b#2(c#3),d#4),e#5)").unwrap();
        let n = |i| NodeId::from_raw(i);

        let (tok, scope) =
            apply_undoable(&mut t, &Update::Relabel { node: n(3), label: Label::new("x") })
                .unwrap();
        assert_eq!(
            scope,
            EditScope::Relabel { node: n(3), from: Label::new("c"), to: Label::new("x") }
        );
        let back = undo(&mut t, tok).unwrap();
        assert_eq!(
            back,
            EditScope::Relabel { node: n(3), from: Label::new("x"), to: Label::new("c") }
        );

        let fresh = NodeId::fresh();
        let (tok, scope) =
            apply_undoable(&mut t, &Update::ReplaceId { node: n(4), new_id: fresh }).unwrap();
        assert_eq!(scope, EditScope::ReplaceId { from: n(4), to: fresh });
        assert_eq!(undo(&mut t, tok).unwrap(), EditScope::ReplaceId { from: fresh, to: n(4) });

        // Structural edits report the deepest node containing every change.
        let (tok, scope) = apply_undoable(&mut t, &Update::DeleteSubtree { node: n(2) }).unwrap();
        assert_eq!(scope, EditScope::Structural { root: Some(n(1)) });
        assert_eq!(undo(&mut t, tok).unwrap(), EditScope::Structural { root: Some(n(1)) });

        let (tok, scope) = apply_undoable(&mut t, &Update::DeleteNode { node: n(2) }).unwrap();
        assert_eq!(scope, EditScope::Structural { root: Some(n(1)) });
        assert_eq!(undo(&mut t, tok).unwrap(), EditScope::Structural { root: Some(n(1)) });

        // Move from under a#1 to under e#5: the common ancestor is the root.
        let (tok, scope) =
            apply_undoable(&mut t, &Update::Move { node: n(2), new_parent: n(5) }).unwrap();
        assert_eq!(scope, EditScope::Structural { root: Some(t.root_id()) });
        assert_eq!(undo(&mut t, tok).unwrap(), EditScope::Structural { root: Some(t.root_id()) });

        // Move within one subtree: the scope narrows to that subtree.
        let (tok, scope) =
            apply_undoable(&mut t, &Update::Move { node: n(3), new_parent: n(4) }).unwrap();
        assert_eq!(scope, EditScope::Structural { root: Some(n(1)) });
        assert_eq!(undo(&mut t, tok).unwrap(), EditScope::Structural { root: Some(n(1)) });
    }

    #[test]
    fn undo_restores_exact_child_order() {
        // Undo must be an exact inverse: same child order, not just the
        // same unordered tree. `render()` prints children in list order.
        let original = parse_term("r(a#1,b#2,c#3(d#4,e#5),f#6)").unwrap();
        let mut work = original.clone();
        for op in [
            Update::DeleteSubtree { node: NodeId::from_raw(2) },
            Update::DeleteNode { node: NodeId::from_raw(3) },
            Update::Move { node: NodeId::from_raw(1), new_parent: NodeId::from_raw(3) },
            Update::Move { node: NodeId::from_raw(4), new_parent: NodeId::from_raw(6) },
        ] {
            let (token, _scope) = apply_undoable(&mut work, &op).unwrap();
            undo(&mut work, token).unwrap();
            assert_eq!(work.render(), original.render(), "{op}");
        }
        // Also across a LIFO stack of interleaved edits.
        let mut stack = Vec::new();
        for op in [
            Update::DeleteNode { node: NodeId::from_raw(3) },
            Update::DeleteSubtree { node: NodeId::from_raw(4) },
            Update::Move { node: NodeId::from_raw(1), new_parent: NodeId::from_raw(6) },
        ] {
            stack.push(apply_undoable(&mut work, &op).unwrap().0);
        }
        while let Some(token) = stack.pop() {
            undo(&mut work, token).unwrap();
        }
        assert_eq!(work.render(), original.render());
    }

    #[test]
    fn failed_undoable_apply_leaves_tree_untouched() {
        let before = parse_term("r(a#1)").unwrap();
        let mut work = before.clone();
        for op in [
            Update::DeleteSubtree { node: NodeId::from_raw(99) },
            Update::DeleteNode { node: before.root_id() },
            Update::Move { node: before.root_id(), new_parent: NodeId::from_raw(1) },
        ] {
            assert!(apply_undoable(&mut work, &op).is_err());
            assert!(work.identified_eq(&before), "{op}");
        }
    }
}
