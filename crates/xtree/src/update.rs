//! Update operations over data trees.
//!
//! Following the paper (and Tatarinov et al. [27]), an *update* is a sequence
//! of node insertions, deletions, moves and label modifications; the paper
//! then abstracts a whole update sequence as the pair of trees `(I, J)`.
//! This module provides the concrete operations so examples and workload
//! generators can *produce* such pairs by actually editing documents.

use crate::label::Label;
use crate::node::NodeId;
use crate::tree::{DataTree, DetachToken, SpliceToken, TreeError};
use std::fmt;

/// A single primitive update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Update {
    /// Insert a fresh leaf `(id, label)` under `parent`.
    InsertLeaf { parent: NodeId, id: NodeId, label: Label },
    /// Delete the whole subtree rooted at `node`.
    DeleteSubtree { node: NodeId },
    /// Delete `node` only; its children are promoted to its parent.
    DeleteNode { node: NodeId },
    /// Move the subtree rooted at `node` under `new_parent`.
    Move { node: NodeId, new_parent: NodeId },
    /// Change the label of `node`.
    Relabel { node: NodeId, label: Label },
    /// Replace `node`'s identity by `new_id`, keeping label, position and
    /// children (the `I[n → n']` operation of Theorem 3.1).
    ReplaceId { node: NodeId, new_id: NodeId },
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::InsertLeaf { parent, id, label } => {
                write!(f, "insert {label}[{id}] under {parent}")
            }
            Update::DeleteSubtree { node } => write!(f, "delete subtree {node}"),
            Update::DeleteNode { node } => write!(f, "delete node {node}"),
            Update::Move { node, new_parent } => write!(f, "move {node} under {new_parent}"),
            Update::Relabel { node, label } => write!(f, "relabel {node} to {label}"),
            Update::ReplaceId { node, new_id } => write!(f, "replace id {node} by {new_id}"),
        }
    }
}

/// Errors from applying updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The underlying tree operation failed.
    Tree(TreeError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Tree(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<TreeError> for UpdateError {
    fn from(e: TreeError) -> Self {
        UpdateError::Tree(e)
    }
}

/// Applies one update in place.
pub fn apply_update(tree: &mut DataTree, update: &Update) -> Result<(), UpdateError> {
    match update {
        Update::InsertLeaf { parent, id, label } => {
            tree.add_with_id(*parent, *id, *label)?;
        }
        Update::DeleteSubtree { node } => tree.delete_subtree(*node)?,
        Update::DeleteNode { node } => tree.delete_node(*node)?,
        Update::Move { node, new_parent } => tree.move_node(*node, *new_parent)?,
        Update::Relabel { node, label } => tree.relabel(*node, *label)?,
        Update::ReplaceId { node, new_id } => tree.replace_id(*node, *new_id)?,
    }
    Ok(())
}

/// The inverse record of one applied [`Update`], produced by
/// [`apply_undoable`] and consumed (LIFO) by [`undo`].
///
/// Deletions are recorded as *detachments* — the removed nodes stay parked
/// in the tree's arena — so a full apply/undo round trip performs **no
/// tree clones and no node reconstruction**. This is what lets candidate
/// searches edit one working tree in place instead of cloning per
/// candidate.
#[derive(Debug)]
pub enum Undo {
    RemoveLeaf { id: NodeId },
    Reattach(DetachToken),
    Unsplice(SpliceToken),
    MoveBack { node: NodeId, old_parent: NodeId },
    Relabel { node: NodeId, old: Label },
    RestoreId { current: NodeId, old: NodeId },
}

/// Applies one update in place and returns the token that undoes it.
pub fn apply_undoable(tree: &mut DataTree, update: &Update) -> Result<Undo, UpdateError> {
    Ok(match update {
        Update::InsertLeaf { parent, id, label } => {
            tree.add_with_id(*parent, *id, *label)?;
            Undo::RemoveLeaf { id: *id }
        }
        Update::DeleteSubtree { node } => Undo::Reattach(tree.detach_subtree(*node)?),
        Update::DeleteNode { node } => Undo::Unsplice(tree.splice_node(*node)?),
        Update::Move { node, new_parent } => {
            let old_parent =
                tree.parent(*node)?.ok_or(UpdateError::Tree(TreeError::RootImmovable))?;
            tree.move_node(*node, *new_parent)?;
            Undo::MoveBack { node: *node, old_parent }
        }
        Update::Relabel { node, label } => {
            let old = tree.label(*node)?;
            tree.relabel(*node, *label)?;
            Undo::Relabel { node: *node, old }
        }
        Update::ReplaceId { node, new_id } => {
            tree.replace_id(*node, *new_id)?;
            Undo::RestoreId { current: *new_id, old: *node }
        }
    })
}

/// Reverts one update recorded by [`apply_undoable`]. Undo tokens must be
/// consumed in LIFO order relative to the applies they revert.
pub fn undo(tree: &mut DataTree, token: Undo) -> Result<(), UpdateError> {
    match token {
        Undo::RemoveLeaf { id } => tree.delete_subtree(id)?,
        Undo::Reattach(t) => tree.reattach_subtree(t),
        Undo::Unsplice(t) => tree.unsplice_node(t),
        Undo::MoveBack { node, old_parent } => tree.move_node(node, old_parent)?,
        Undo::Relabel { node, old } => tree.relabel(node, old)?,
        Undo::RestoreId { current, old } => tree.replace_id(current, old)?,
    }
    Ok(())
}

/// Applies a sequence of updates to a copy of `before`, returning the
/// resulting `(I, J)` pair convention: `(before, after)`.
pub fn apply_all(before: &DataTree, updates: &[Update]) -> Result<DataTree, UpdateError> {
    let mut after = before.clone();
    for u in updates {
        apply_update(&mut after, u)?;
    }
    Ok(after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_term;

    #[test]
    fn sequence_produces_pair() {
        let before = parse_term("root(patient#1(visit#2),patient#3)").unwrap();
        let fresh = NodeId::fresh();
        let after = apply_all(
            &before,
            &[
                Update::DeleteSubtree { node: NodeId::from_raw(2) },
                Update::InsertLeaf {
                    parent: NodeId::from_raw(3),
                    id: fresh,
                    label: Label::new("visit"),
                },
            ],
        )
        .unwrap();
        assert!(before.contains(NodeId::from_raw(2)));
        assert!(!after.contains(NodeId::from_raw(2)));
        assert!(after.contains(fresh));
        // The before tree is untouched.
        assert_eq!(before.len(), 4);
    }

    #[test]
    fn relabel_and_move() {
        let before = parse_term("r(a#1(b#2),c#3)").unwrap();
        let after = apply_all(
            &before,
            &[
                Update::Relabel { node: NodeId::from_raw(2), label: Label::new("x") },
                Update::Move { node: NodeId::from_raw(2), new_parent: NodeId::from_raw(3) },
            ],
        )
        .unwrap();
        assert_eq!(after.label(NodeId::from_raw(2)).unwrap(), Label::new("x"));
        assert_eq!(after.parent(NodeId::from_raw(2)).unwrap(), Some(NodeId::from_raw(3)));
    }

    #[test]
    fn failing_update_reports_error() {
        let before = parse_term("r(a#1)").unwrap();
        let err = apply_all(&before, &[Update::DeleteSubtree { node: NodeId::from_raw(99) }])
            .unwrap_err();
        assert!(matches!(err, UpdateError::Tree(TreeError::NodeNotFound(_))));
    }

    #[test]
    fn display_updates() {
        let u = Update::DeleteSubtree { node: NodeId::from_raw(7) };
        assert_eq!(format!("{u}"), "delete subtree n7");
    }

    #[test]
    fn apply_undo_round_trips_every_op() {
        let original = parse_term("r(a#1(b#2(c#3),d#4),e#5)").unwrap();
        let fresh = NodeId::fresh();
        let ops = [
            Update::InsertLeaf {
                parent: NodeId::from_raw(4),
                id: NodeId::fresh(),
                label: Label::new("new"),
            },
            Update::DeleteSubtree { node: NodeId::from_raw(1) },
            Update::DeleteNode { node: NodeId::from_raw(2) },
            Update::Move { node: NodeId::from_raw(2), new_parent: NodeId::from_raw(5) },
            Update::Relabel { node: NodeId::from_raw(3), label: Label::new("x") },
            Update::ReplaceId { node: NodeId::from_raw(4), new_id: fresh },
        ];
        let mut work = original.clone();
        for op in &ops {
            let token = apply_undoable(&mut work, op).unwrap();
            // The edit is observable...
            assert!(!work.identified_eq(&original), "{op} must change the tree");
            // ...and fully reverted by its token.
            undo(&mut work, token).unwrap();
            assert!(work.identified_eq(&original), "undo of {op} must restore");
        }
    }

    #[test]
    fn apply_undoable_matches_apply_update() {
        let before = parse_term("r(a#1(b#2),c#3)").unwrap();
        for op in [
            Update::DeleteSubtree { node: NodeId::from_raw(1) },
            Update::DeleteNode { node: NodeId::from_raw(1) },
            Update::Move { node: NodeId::from_raw(2), new_parent: NodeId::from_raw(3) },
            Update::Relabel { node: NodeId::from_raw(2), label: Label::new("y") },
        ] {
            let mut via_plain = before.clone();
            apply_update(&mut via_plain, &op).unwrap();
            let mut via_undoable = before.clone();
            let _token = apply_undoable(&mut via_undoable, &op).unwrap();
            assert!(via_plain.identified_eq(&via_undoable), "{op}");
        }
    }

    #[test]
    fn nested_undo_stack_restores_in_lifo_order() {
        let original = parse_term("r(a#1(b#2(c#3)),d#4)").unwrap();
        let mut work = original.clone();
        let mut stack = Vec::new();
        for op in [
            Update::Relabel { node: NodeId::from_raw(4), label: Label::new("w") },
            Update::DeleteNode { node: NodeId::from_raw(2) },
            Update::Move { node: NodeId::from_raw(3), new_parent: NodeId::from_raw(4) },
            Update::DeleteSubtree { node: NodeId::from_raw(3) },
        ] {
            stack.push(apply_undoable(&mut work, &op).unwrap());
        }
        while let Some(token) = stack.pop() {
            undo(&mut work, token).unwrap();
        }
        assert!(work.identified_eq(&original));
    }

    #[test]
    fn failed_undoable_apply_leaves_tree_untouched() {
        let before = parse_term("r(a#1)").unwrap();
        let mut work = before.clone();
        for op in [
            Update::DeleteSubtree { node: NodeId::from_raw(99) },
            Update::DeleteNode { node: before.root_id() },
            Update::Move { node: before.root_id(), new_parent: NodeId::from_raw(1) },
        ] {
            assert!(apply_undoable(&mut work, &op).is_err());
            assert!(work.identified_eq(&before), "{op}");
        }
    }
}
