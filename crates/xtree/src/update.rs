//! Update operations over data trees.
//!
//! Following the paper (and Tatarinov et al. [27]), an *update* is a sequence
//! of node insertions, deletions, moves and label modifications; the paper
//! then abstracts a whole update sequence as the pair of trees `(I, J)`.
//! This module provides the concrete operations so examples and workload
//! generators can *produce* such pairs by actually editing documents.

use crate::label::Label;
use crate::node::NodeId;
use crate::tree::{DataTree, TreeError};
use std::fmt;

/// A single primitive update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Update {
    /// Insert a fresh leaf `(id, label)` under `parent`.
    InsertLeaf { parent: NodeId, id: NodeId, label: Label },
    /// Delete the whole subtree rooted at `node`.
    DeleteSubtree { node: NodeId },
    /// Delete `node` only; its children are promoted to its parent.
    DeleteNode { node: NodeId },
    /// Move the subtree rooted at `node` under `new_parent`.
    Move { node: NodeId, new_parent: NodeId },
    /// Change the label of `node`.
    Relabel { node: NodeId, label: Label },
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::InsertLeaf { parent, id, label } => {
                write!(f, "insert {label}[{id}] under {parent}")
            }
            Update::DeleteSubtree { node } => write!(f, "delete subtree {node}"),
            Update::DeleteNode { node } => write!(f, "delete node {node}"),
            Update::Move { node, new_parent } => write!(f, "move {node} under {new_parent}"),
            Update::Relabel { node, label } => write!(f, "relabel {node} to {label}"),
        }
    }
}

/// Errors from applying updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The underlying tree operation failed.
    Tree(TreeError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Tree(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<TreeError> for UpdateError {
    fn from(e: TreeError) -> Self {
        UpdateError::Tree(e)
    }
}

/// Applies one update in place.
pub fn apply_update(tree: &mut DataTree, update: &Update) -> Result<(), UpdateError> {
    match update {
        Update::InsertLeaf { parent, id, label } => {
            tree.add_with_id(*parent, *id, *label)?;
        }
        Update::DeleteSubtree { node } => tree.delete_subtree(*node)?,
        Update::DeleteNode { node } => tree.delete_node(*node)?,
        Update::Move { node, new_parent } => tree.move_node(*node, *new_parent)?,
        Update::Relabel { node, label } => tree.relabel(*node, *label)?,
    }
    Ok(())
}

/// Applies a sequence of updates to a copy of `before`, returning the
/// resulting `(I, J)` pair convention: `(before, after)`.
pub fn apply_all(before: &DataTree, updates: &[Update]) -> Result<DataTree, UpdateError> {
    let mut after = before.clone();
    for u in updates {
        apply_update(&mut after, u)?;
    }
    Ok(after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_term;

    #[test]
    fn sequence_produces_pair() {
        let before = parse_term("root(patient#1(visit#2),patient#3)").unwrap();
        let fresh = NodeId::fresh();
        let after = apply_all(
            &before,
            &[
                Update::DeleteSubtree { node: NodeId::from_raw(2) },
                Update::InsertLeaf {
                    parent: NodeId::from_raw(3),
                    id: fresh,
                    label: Label::new("visit"),
                },
            ],
        )
        .unwrap();
        assert!(before.contains(NodeId::from_raw(2)));
        assert!(!after.contains(NodeId::from_raw(2)));
        assert!(after.contains(fresh));
        // The before tree is untouched.
        assert_eq!(before.len(), 4);
    }

    #[test]
    fn relabel_and_move() {
        let before = parse_term("r(a#1(b#2),c#3)").unwrap();
        let after = apply_all(
            &before,
            &[
                Update::Relabel { node: NodeId::from_raw(2), label: Label::new("x") },
                Update::Move { node: NodeId::from_raw(2), new_parent: NodeId::from_raw(3) },
            ],
        )
        .unwrap();
        assert_eq!(after.label(NodeId::from_raw(2)).unwrap(), Label::new("x"));
        assert_eq!(after.parent(NodeId::from_raw(2)).unwrap(), Some(NodeId::from_raw(3)));
    }

    #[test]
    fn failing_update_reports_error() {
        let before = parse_term("r(a#1)").unwrap();
        let err = apply_all(&before, &[Update::DeleteSubtree { node: NodeId::from_raw(99) }])
            .unwrap_err();
        assert!(matches!(err, UpdateError::Tree(TreeError::NodeNotFound(_))));
    }

    #[test]
    fn display_updates() {
        let u = Update::DeleteSubtree { node: NodeId::from_raw(7) };
        assert_eq!(format!("{u}"), "delete subtree n7");
    }
}
