//! Interned node labels.
//!
//! The paper draws labels from an infinite domain `L`; concretely we intern
//! strings into `u32` handles through a global interner so that label
//! comparison, hashing and automata alphabets work on plain integers.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned label. Two labels are equal iff their underlying strings are.
///
/// ```
/// use xuc_xtree::Label;
/// let a = Label::new("patient");
/// let b = Label::new("patient");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "patient");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(u32);

struct Interner {
    names: Vec<&'static str>,
    index: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner { names: Vec::new(), index: HashMap::new() }))
}

impl Label {
    /// Interns `name` and returns its label handle.
    pub fn new(name: &str) -> Self {
        {
            let guard = interner().read();
            if let Some(&id) = guard.index.get(name) {
                return Label(id);
            }
        }
        let mut guard = interner().write();
        if let Some(&id) = guard.index.get(name) {
            return Label(id);
        }
        // Labels live for the whole process; leaking keeps `as_str` free of
        // locking and allocation on the hot path.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(guard.names.len()).expect("label interner overflow");
        guard.names.push(leaked);
        guard.index.insert(leaked, id);
        Label(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// A stable integer handle, usable as an automaton alphabet symbol.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The conventional "fresh" label `z` used throughout the paper's proofs
    /// for nodes whose label must not interact with any constraint.
    pub fn z() -> Self {
        Label::new("z")
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Label {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.as_str())
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Label {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        Ok(Label::new(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Label::new("a");
        let b = Label::new("b");
        let a2 = Label::new("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.raw(), a2.raw());
        assert_eq!(a.as_str(), "a");
        assert_eq!(b.as_str(), "b");
    }

    #[test]
    fn display_prints_name() {
        assert_eq!(format!("{}", Label::new("visit")), "visit");
        assert_eq!(format!("{:?}", Label::new("visit")), "visit");
    }

    #[test]
    fn z_label_is_z() {
        assert_eq!(Label::z().as_str(), "z");
    }

    #[test]
    fn many_labels_distinct() {
        let labels: Vec<Label> = (0..500).map(|i| Label::new(&format!("l{i}"))).collect();
        for (i, a) in labels.iter().enumerate() {
            for (j, b) in labels.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }
}
