//! Cross-crate integration: the full Source → Broker → User pipeline plus
//! the Theorem 4.2 reduction round-trip.

use xml_update_constraints::prelude::*;

#[test]
fn exchange_pipeline_end_to_end() {
    let mut rng = xuc_bench_rng();
    let original = xuc_workloads::trees::hospital(&mut rng, 30, 3);
    let policy = xuc_workloads::trees::example_2_1_constraints();
    let signer = xuc_sigstore::Signer::new(0xd0c);
    let cert = signer.certify(&original, &policy);

    // Compliant broker: add visits — but only to patients that already
    // have one, otherwise (/patient[/visit], ↓) rightly fires.
    let mut compliant = original.clone();
    let patients = eval(&parse_query("/patient[/visit]").unwrap(), &compliant);
    for p in patients.iter().take(5) {
        compliant.add(p.id, "visit").unwrap();
    }
    assert!(cert.verify(0xd0c, &compliant).is_ok());
    assert!(xuc_core::constraint::all_satisfied(&policy, &original, &compliant));

    // Rogue broker: delete a visit from a visited patient.
    let visited = eval(&parse_query("/patient/visit").unwrap(), &original);
    if let Some(v) = visited.iter().next() {
        let mut rogue = original.clone();
        rogue.delete_subtree(v.id).unwrap();
        assert!(cert.verify(0xd0c, &rogue).is_err());
        assert!(!xuc_core::constraint::all_satisfied(&policy, &original, &rogue));
    }
}

#[test]
fn reduction_round_trip_on_linear_counterexamples() {
    // Theorem 4.2/4.3: every counterexample produced by the exact linear
    // decider satisfies the emitted (DTD, Σ) instance under φ.
    let cases = [
        (vec!["(//a, ↑)"], "(//a//b, ↑)"),
        (vec!["(//a//c, ↑)", "(//b//c, ↑)", "(//a//b//c, ↓)"], "(//b//a//c, ↑)"),
    ];
    for (set_src, goal_src) in cases {
        let set: Vec<Constraint> = set_src.iter().map(|s| parse_constraint(s).unwrap()).collect();
        let goal = parse_constraint(goal_src).unwrap();
        match xuc_core::implication::linear::implies_linear(&set, &goal) {
            Outcome::NotImplied(ce) => {
                let red = xuc_regular::reduce(&set, &goal);
                let viol = goal.violation(&ce.before, &ce.after).unwrap();
                let witness = viol.offenders.iter().next().unwrap().id;
                let enc = xuc_regular::phi(&ce.before, &ce.after, witness, &red.alphabet);
                assert!(red.satisfied_by(&enc), "φ(counterexample) must satisfy (D, Σ)");
            }
            Outcome::Implied => {
                // Implied cases: sanity-check φ of the identity pair fails Σ.
                let red = xuc_regular::reduce(&set, &goal);
                let i = parse_term("r(a#1(b#2(c#3)))").unwrap();
                let enc = xuc_regular::phi(&i, &i, NodeId::from_raw(3), &red.alphabet);
                assert!(!red.satisfied_by(&enc));
            }
            other => panic!("unexpected outcome {other}"),
        }
    }
}

#[test]
fn general_implication_entails_instance_based_everywhere() {
    // C ⊨ c ⇒ C ⊨_J c for random documents (Section 2.1's observation).
    let mut rng = xuc_bench_rng();
    let labels = ["a", "b", "c"];
    let gen = xuc_workloads::queries::QueryGen::linear(&labels);
    let mut checked = 0;
    // Implied (C, c) draws are rare (about 1% of random linear pairs), so
    // sample enough that the workload reliably produces a few.
    for _ in 0..300 {
        let set = gen.set(&mut rng, 2, 0.5);
        let goal = gen.constraint(&mut rng, 0.5);
        if !implies(&set, &goal).is_implied() {
            continue;
        }
        checked += 1;
        let j = xuc_workloads::trees::random_tree(&mut rng, &labels, 10);
        let on_j = implies_on(&set, &j, &goal);
        assert!(!on_j.is_not_implied(), "C ⊨ c but C ⊭_J c?! C={set:?} c={goal} J={j:?}");
    }
    assert!(checked > 0, "workload produced no implied instances");
}

fn xuc_bench_rng() -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(0xabcdef)
}
