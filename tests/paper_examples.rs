//! End-to-end reproduction of every worked example in the paper, exercised
//! through the public facade.

use xml_update_constraints::prelude::*;

#[test]
fn example_2_1_figure_2() {
    let (i, j) = xuc_workloads::trees::fig2_pair();
    let cs = xuc_workloads::trees::example_2_1_constraints();
    // (I, J) is valid for c1 and c2 but not c3 — the visit n7 was deleted.
    assert!(cs[0].satisfied_by(&i, &j));
    assert!(cs[1].satisfied_by(&i, &j) && cs[2].satisfied_by(&i, &j));
    let v = cs[3].violation(&i, &j).expect("c3 violated");
    assert_eq!(v.offenders.iter().map(|n| n.id.raw()).collect::<Vec<_>>(), vec![7]);
}

#[test]
fn section_2_1_general_implication() {
    // {c1, c2} ⊨ (/patient[/visit][/clinicalTrial], ↓).
    let set = vec![
        parse_constraint("(/patient[/visit], ↓)").unwrap(),
        parse_constraint("(/patient[/clinicalTrial], ↓)").unwrap(),
        parse_constraint("(/patient[/clinicalTrial], ↑)").unwrap(),
    ];
    let goal = parse_constraint("(/patient[/visit][/clinicalTrial], ↓)").unwrap();
    assert!(implies(&set, &goal).is_implied());
    // Dropping either predicate protection breaks the implication.
    assert!(implies(&set[..1], &goal).is_not_implied());
}

#[test]
fn example_4_1_interaction_of_types() {
    let (set, goal) = xuc_workloads::trees::example_4_1();
    let full = implies(&set, &goal);
    assert!(full.is_implied(), "Example 4.1: the mixed-type set implies c");
    let up_only: Vec<Constraint> =
        set.iter().filter(|c| c.kind == ConstraintKind::NoRemove).cloned().collect();
    let partial = implies(&up_only, &goal);
    assert!(partial.is_not_implied(), "Example 4.1: ↑ constraints alone do not");
    if let Outcome::NotImplied(ce) = partial {
        assert!(ce.verify(&up_only, &goal));
    }
}

#[test]
fn theorem_3_1_equivalence_characterization() {
    // c1 ⊨ c2 (single constraints, same type) iff the ranges are
    // equivalent.
    let pairs = [
        ("/a/b", "/a/b", true),
        ("/a[/b]", "/a[/b]", true),
        ("//a//b", "//a//b", true),
        ("/a/b", "//b", false),
        ("//b", "/a/b", false),
        ("/a[/b]", "/a", false),
    ];
    for (q1, q2, expected) in pairs {
        for kind in ["↑", "↓"] {
            let c1 = parse_constraint(&format!("({q1}, {kind})")).unwrap();
            let c2 = parse_constraint(&format!("({q2}, {kind})")).unwrap();
            let got = implies(&[c1], &c2).decided().expect("decidable fragment");
            assert_eq!(got, expected, "({q1},{kind}) ⊨ ({q2},{kind})");
        }
    }
}

#[test]
fn example_3_3_chase_divergence() {
    let deps = xuc_xic::example_3_3();
    let mut db = xuc_xic::FactDb::new();
    xuc_xic::seed_two_branch(&mut db);
    xuc_xic::seed_path(&mut db, xuc_xic::I_BRANCH, &["a", "b", "c", "d"]);
    assert!(matches!(xuc_xic::chase(&mut db, &deps, 12), xuc_xic::ChaseResult::CapReached { .. }));
}

#[test]
fn example_6_1_relative_same_type_failure() {
    // With relative constraints the same-type property fails even in
    // XP{/,[]}: c is only enforced through the ↓ constraints. We verify
    // the *validity-level* facts on a move that the relative constraint
    // forbids but the absolute one allows.
    let i = parse_term("h(patient#1(visit#3),patient#2)").unwrap();
    let j = parse_term("h(patient#1,patient#2(visit#3))").unwrap();
    let absolute = parse_constraint("(/patient/visit, ↑)").unwrap();
    let relative = RelativeConstraint::new(
        parse_query("/patient").unwrap(),
        parse_query("/visit").unwrap(),
        ConstraintKind::NoRemove,
    );
    assert!(absolute.satisfied_by(&i, &j));
    assert!(!relative.satisfied_by(&i, &j));
}

#[test]
fn section_2_2_sequences() {
    let c = vec![parse_constraint("(/a, ↓)").unwrap()];
    let s0 = parse_term("r(a#1,a#2,a#3)").unwrap();
    let s1 = parse_term("r(a#1,a#2)").unwrap();
    let s2 = parse_term("r(a#1)").unwrap();
    assert!(xuc_core::constraint::sequence_pairwise_valid(
        &c,
        &[s0.clone(), s1.clone(), s2.clone()]
    ));
    assert!(xuc_core::constraint::sequence_valid_for_last(&c, &[s0, s1, s2]));
}

#[test]
fn hardness_gadgets_track_sat() {
    for f in [
        xuc_workloads::Formula::unsatisfiable(3),
        xuc_workloads::Formula::new(
            3,
            vec![xuc_workloads::Clause([
                xuc_workloads::Literal::pos(0),
                xuc_workloads::Literal::neg(1),
                xuc_workloads::Literal::pos(2),
            ])],
        ),
    ] {
        let sat = f.satisfiable();
        let g46 = xuc_workloads::gadgets::Thm46Gadget::new(f.clone());
        assert_eq!(g46.implied_by_assignment_sweep(), !sat, "Thm 4.6 on {f}");
        let g52 = xuc_workloads::gadgets::Thm52Gadget::new(f.clone());
        assert_eq!(g52.implied_by_assignment_sweep(), !sat, "Thm 5.2 on {f}");
    }
}
