//! The gateway under pressure: admission queues, load shedding, and
//! degraded modes — all on the public API, no fault injection.
//!
//! An open-loop arrival stream (arrivals carry their own clock; nobody
//! waits for a verdict before the next request lands) hits the hospital
//! gateway faster than its shards can serve. The gateway sheds load by
//! a deterministic plan — same shed set at every worker count — and the
//! [`LoadReport`] shows commits surviving at a higher rate than reads,
//! because the shedding policy drops the recoverable class first.
//!
//! Run with `cargo run --example survive_the_fault`.

use xml_update_constraints::prelude::*;
use xuc_service::workload::seeded_arrivals;
use xuc_xtree::DataTree;

fn deployment() -> Vec<(DocId, DataTree, Vec<Constraint>)> {
    (0..4)
        .map(|k| {
            let tree = parse_term(&format!(
                "hospital#{}(patient#{}(visit#{}))",
                3 * k + 1,
                3 * k + 2,
                3 * k + 3
            ))
            .unwrap();
            let suite = vec![parse_constraint("(/patient/visit, ↑)").unwrap()];
            (DocId::new(&format!("ward-{k}")), tree, suite)
        })
        .collect()
}

fn fresh_gateway(deployment: &[(DocId, DataTree, Vec<Constraint>)]) -> Gateway {
    let gw = Gateway::new(Signer::new(0x0be2));
    for (id, tree, suite) in deployment {
        gw.publish(*id, tree.clone(), suite.clone()).unwrap();
    }
    gw
}

fn main() {
    let deployment = deployment();
    let doc_refs: Vec<(DocId, &DataTree)> =
        deployment.iter().map(|(id, tree, _)| (*id, tree)).collect();

    // 8 arrivals per virtual tick, 40% reads, across 4 documents: far
    // above what one-slot-per-shard queues can absorb.
    let arrivals = seeded_arrivals(&doc_refs, &["visit"], 0x0ad5, 240, 8, 40, None);

    // ---- Overload: sweep the queue capacity ----------------------------
    println!("open loop, 240 arrivals at 8/tick over 4 documents:");
    println!("{:>10}  {:>12}  {:>12}  {:>12}", "capacity", "availability", "reads", "commits");
    let mut last = 0.0;
    for capacity in [1usize, 4, 16, usize::MAX] {
        let opts = LoadOptions { queue_capacity: capacity, service_ticks: 2 };
        let gw = fresh_gateway(&deployment);
        let (_, report) = gw.process_open_loop(&arrivals, 4, &opts);
        let cap = if capacity == usize::MAX { "∞".into() } else { capacity.to_string() };
        println!(
            "{cap:>10}  {:>12.3}  {:>12.3}  {:>12.3}",
            report.availability(),
            report.read_availability(),
            report.commit_availability()
        );
        assert!(report.availability() >= last, "more queue, no less service");
        assert!(
            report.commit_availability() >= report.read_availability(),
            "shedding prefers dropping reads over commits"
        );
        last = report.availability();
    }
    println!("shedding prefers dropping reads over commits ✓\n");

    // ---- Deadlines: stale work is shed before evaluation ---------------
    let impatient = seeded_arrivals(&doc_refs, &["visit"], 0x0ad5, 240, 8, 40, Some(4));
    let opts = LoadOptions { queue_capacity: 16, service_ticks: 2 };
    let gw = fresh_gateway(&deployment);
    let (_, report) = gw.process_open_loop(&impatient, 4, &opts);
    assert!(report.shed_deadline > 0, "overload must expire some deadlines");
    println!(
        "with a 4-tick deadline: {} arrivals expired in queue, {} served",
        report.shed_deadline, report.served
    );

    // ---- Determinism: the shed set is a plan, not a race ---------------
    // `plan_admission` decides every shed from the arrival schedule alone,
    // so the verdict log is byte-identical at every worker count.
    let tight = LoadOptions { queue_capacity: 2, service_ticks: 2 };
    let reference = {
        let gw = fresh_gateway(&deployment);
        let (verdicts, _) = gw.process_open_loop(&arrivals, 1, &tight);
        render_arrival_log(&arrivals, &verdicts)
    };
    for workers in [2usize, 8] {
        let gw = fresh_gateway(&deployment);
        let (verdicts, _) = gw.process_open_loop(&arrivals, workers, &tight);
        assert_eq!(reference, render_arrival_log(&arrivals, &verdicts));
    }
    let shed = reference.lines().filter(|l| l.contains("overloaded")).count();
    println!("shedding log ({shed} sheds) byte-identical at 1, 2 and 8 workers ✓\n");

    // ---- Degraded mode: a halted gateway refuses, visibly --------------
    // Operators park a gateway with `halt`; every verdict then names the
    // degradation instead of timing out or panicking. (Durable gateways
    // reach the intermediate `ReadOnly` state on journal faults and climb
    // back with `try_resume` — see the chaos harness in
    // `crates/service/tests/chaos.rs`.)
    let gw = fresh_gateway(&deployment);
    gw.halt("scheduled maintenance");
    assert_eq!(gw.state(), GatewayState::Halted);
    let verdict = gw.submit(&Request { doc: doc_refs[0].0, updates: vec![] });
    println!("while halted: {verdict}");
    assert!(matches!(
        verdict,
        Verdict::Rejected(RejectReason::Degraded { reason: DegradedReason::Halted })
    ));
    println!("last fault: {}", gw.last_fault().unwrap());
}
