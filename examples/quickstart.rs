//! Quickstart: build documents, evaluate queries, check validity, and ask
//! both implication questions.
//!
//! Run with `cargo run --example quickstart`.

use xml_update_constraints::prelude::*;

fn main() {
    // --- documents with persistent node identity ---------------------
    let before = parse_term("shop(product#1(price#2),product#3,ad#4)").unwrap();
    let mut after = before.clone();
    after.delete_subtree(NodeId::from_raw(3)).unwrap(); // drop a product
    after.add(after.root_id(), "ad").unwrap(); // add an advertisement

    // --- query evaluation ---------------------------------------------
    let products = parse_query("/product").unwrap();
    println!("products before: {:?}", eval(&products, &before));
    println!("products after:  {:?}", eval(&products, &after));

    // --- validity of the evolution --------------------------------------
    let policy = vec![
        parse_constraint("(/product, ↓)").unwrap(), // products may only shrink
        parse_constraint("(/product/price, ↓)").unwrap(),
        parse_constraint("(/ad, ↑)").unwrap(), // ads may only grow
    ];
    for c in &policy {
        println!("{c}: {}", if c.satisfied_by(&before, &after) { "ok" } else { "VIOLATED" });
    }

    // --- general implication (Definition 2.4) ---------------------------
    // The §2.1 pattern: two protected predicates imply their conjunction.
    let review_policy = vec![
        parse_constraint("(/product[/price], ↓)").unwrap(),
        parse_constraint("(/product[/review], ↓)").unwrap(),
    ];
    let goal = parse_constraint("(/product[/price][/review], ↓)").unwrap();
    let outcome = implies(&review_policy, &goal);
    println!("{{(/product[/price],↓), (/product[/review],↓)}} ⊨ {goal}? {outcome}");
    assert!(outcome.is_implied());

    // Whereas the weaker single constraint does not protect the pair:
    let weaker = implies(&review_policy[..1], &goal);
    println!("{{(/product[/price],↓)}} ⊨ {goal}? {weaker}");
    assert!(weaker.is_not_implied());

    // --- instance-based implication (Definition 2.5) --------------------
    let goal2 = parse_constraint("(/ad, ↓)").unwrap();
    let outcome2 = implies_on(&policy, &after, &goal2);
    println!("policy ⊨_J {goal2}? {outcome2}");
    if let Outcome::NotImplied(ce) = &outcome2 {
        println!("  a previous instance refuting it:\n{}", ce.before.render());
    }
}
