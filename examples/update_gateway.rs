//! Figure 1 as a running service: the hospital scenario through
//! `xuc-service`'s update-validation gateway.
//!
//! The Source publishes its patient document under Example 2.1's update
//! constraints; Brokers submit update batches; the gateway admits or
//! rejects each batch transactionally and re-certifies the document on
//! every commit, so a User can verify any served state without ever
//! seeing its predecessor — the full Figure 1 loop, end to end.
//!
//! Run with `cargo run --example update_gateway`.

use xml_update_constraints::prelude::*;
use xuc_service::workload::seeded_requests;

fn main() {
    // ---- Source: publish the document under its policy -----------------
    let gateway = Gateway::new(Signer::new(0x5ec2e7));
    let hospital = DocId::new("mercy-west");
    let original = parse_term(
        "hospital#1(patient#2(visit#6,visit#7,clinicalTrial#9),patient#3(clinicalTrial#8))",
    )
    .unwrap();
    let policy = xuc_workloads::trees::example_2_1_constraints();
    println!("policy:");
    for c in &policy {
        println!("  {c}");
    }
    let policy_size = policy.len();
    gateway.publish(hospital, original.clone(), policy).unwrap();
    println!("published {hospital} under {policy_size} constraints\n");

    // ---- Broker 1: a compliant batch (add a visit) ---------------------
    let compliant = Request {
        doc: hospital,
        updates: vec![Update::InsertLeaf {
            parent: NodeId::from_raw(2),
            id: NodeId::fresh(),
            label: "visit".into(),
        }],
    };
    let verdict = gateway.submit(&compliant);
    println!("broker 1 (adds a visit):      {verdict}");
    assert!(verdict.is_accepted());

    // ---- Broker 2: tampering (delete a protected visit) ----------------
    // c3 = (/patient/visit, ↑) forbids removing visits; the whole batch
    // must unwind, including its innocuous first update.
    let tampering = Request {
        doc: hospital,
        updates: vec![
            Update::InsertLeaf {
                parent: NodeId::from_raw(2),
                id: NodeId::fresh(),
                label: "visit".into(),
            },
            Update::DeleteSubtree { node: NodeId::from_raw(7) },
        ],
    };
    let verdict = gateway.submit(&tampering);
    println!("broker 2 (deletes visit n7):  {verdict}");
    assert!(matches!(verdict, Verdict::Rejected(RejectReason::Violation { .. })));

    // ---- Broker 3: malformed traffic ----------------------------------
    let malformed = Request {
        doc: hospital,
        updates: vec![Update::DeleteSubtree { node: NodeId::from_raw(99) }],
    };
    println!("broker 3 (dead node):         {}", gateway.submit(&malformed));

    // ---- User: verify the served state against the fresh certificate --
    // Commit re-certified, so verification covers broker 1's accepted
    // edit — no access to the original needed.
    let served = gateway.snapshot(hospital).unwrap();
    let cert = gateway.certificate(hospital).unwrap();
    assert!(cert.verify(0x5ec2e7, &served).is_ok());
    println!("\nuser: served document verifies ({} nodes, commit #1)", served.len());

    // A man-in-the-middle who strips visit n6 from the served copy is
    // caught immediately.
    let mut stripped = served.clone();
    stripped.delete_subtree(NodeId::from_raw(6)).unwrap();
    match cert.verify(0x5ec2e7, &stripped) {
        Err(e) => println!("user: tampered copy REJECTED — {e}"),
        Ok(()) => unreachable!("tampering must be caught"),
    }

    // ---- Delta admission: edit-proportional commit validation ----------
    // Under an all-linear policy, commits ride the in-place splice
    // (`AdmissionMode::Delta`, the default): the admission check re-derives
    // results only below the batch's dirty subtrees and patches the cached
    // baselines — a relabel-only batch commits without a single pre-order
    // walk of the document, however large it is.
    let records = DocId::new("records");
    let records_tree =
        parse_term("hospital#50(patient#51(visit#52,phone#53),patient#54(phone#55))").unwrap();
    let records_policy = vec![
        parse_constraint("(/patient/visit, ↑)").unwrap(),
        parse_constraint("(//phone, ↓)").unwrap(),
    ];
    gateway.publish(records, records_tree, records_policy).unwrap();
    let walks_before = xuc_xtree::preorder_walk_count();
    let relabels = Request {
        doc: records,
        updates: vec![
            Update::Relabel { node: NodeId::from_raw(53), label: "note".into() },
            Update::Relabel { node: NodeId::from_raw(55), label: "note".into() },
        ],
    };
    let verdict = gateway.submit(&relabels);
    assert!(verdict.is_accepted(), "shrinking a ↓ range is allowed");
    assert_eq!(
        xuc_xtree::preorder_walk_count(),
        walks_before,
        "delta admission must not re-walk the document"
    );
    println!("\ndelta admission: relabel-only batch committed with zero document walks ✓");

    // ---- Heavy traffic: a seeded stream over the worker pool -----------
    // The accept/reject log is a pure function of the stream — identical
    // at every worker count (here: 1 vs 4).
    let clinic = DocId::new("seattle-grace");
    let clinic_tree = parse_term("hospital#40(patient#41(visit#42),patient#43)").unwrap();
    let clinic_policy = vec![
        parse_constraint("(/patient/visit, ↑)").unwrap(),
        parse_constraint("(/patient, ↓)").unwrap(),
    ];

    // Generate the stream ONCE and replay it into both gateways: fresh
    // insert ids are minted at generation time, so both runs see
    // byte-identical inputs.
    let docs = [(hospital, &original), (clinic, &clinic_tree)];
    let requests = seeded_requests(&docs, &["visit", "phone"], 0xF161, 60);
    let run = |workers: usize| {
        let gw = Gateway::new(Signer::new(0x5ec2e7));
        gw.publish(hospital, original.clone(), xuc_workloads::trees::example_2_1_constraints())
            .unwrap();
        gw.publish(clinic, clinic_tree.clone(), clinic_policy.clone()).unwrap();
        let verdicts = gw.process(&requests, workers);
        render_log(&requests, &verdicts)
    };
    let log1 = run(1);
    let log4 = run(4);
    assert_eq!(log1, log4, "worker count must not change the log");
    let accepts = log1.lines().filter(|l| l.contains("ACCEPT")).count();
    println!(
        "\nstreamed 60 requests across 2 documents: {accepts} accepted, {} rejected",
        60 - accepts
    );
    println!("1-worker and 4-worker logs are byte-identical ✓");
    println!("\nfirst lines of the log:");
    for line in log1.lines().take(6) {
        println!("  {line}");
    }
}
