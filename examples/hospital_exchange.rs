//! The Figure 1 exchange scenario: Source → Broker → User.
//!
//! The Source certifies its document under Example 2.1's constraints; the
//! Broker edits it; the User verifies the edit without ever seeing the
//! original, then *reasons about the past* with instance-based
//! implication.
//!
//! Run with `cargo run --example hospital_exchange`.

use xml_update_constraints::prelude::*;
use xuc_sigstore::Signer;

fn main() {
    // Source's document: every patient is enrolled in a clinical trial.
    let original = parse_term(
        "hospital#1(patient#2(visit#6,visit#7,clinicalTrial#9),patient#3(clinicalTrial#8))",
    )
    .unwrap();
    let policy = xuc_workloads::trees::example_2_1_constraints();

    let signer = Signer::new(0x5ec2e7);
    let certificate = signer.certify(&original, &policy);
    println!("Source signed {} range snapshots", certificate.entries.len());

    // Broker performs Fig. 2's edit: deletes visit n7, adds a patient.
    let mut published = original.clone();
    published.delete_subtree(NodeId::from_raw(7)).unwrap();
    published.add(published.root_id(), "patient").unwrap();

    // User verifies: the deletion breaks (/patient/visit, ↑).
    match certificate.verify(0x5ec2e7, &published) {
        Ok(()) => println!("User: document verified"),
        Err(e) => println!("User: REJECTED — {e}"),
    }

    // A compliant Broker edit instead: only *add* a visit.
    let mut compliant = original.clone();
    compliant.add(NodeId::from_raw(2), "visit").unwrap();
    assert!(certificate.verify(0x5ec2e7, &compliant).is_ok());
    println!("User: compliant edit verified");

    // Reasoning about the past (Section 2.1): given only `compliant` and
    // c3 = (/patient/visit, ↑), were the visits of clinicalTrial patients
    // preserved? Yes — every patient in this instance is in a trial, so a
    // visit had nowhere constraint-free to be moved from.
    let c3 = vec![parse_constraint("(/patient/visit, ↑)").unwrap()];
    let goal = parse_constraint("(/patient[/clinicalTrial]/visit, ↑)").unwrap();
    let past = implies_on(&c3, &compliant, &goal);
    println!("{{c3}} ⊨_J {goal}? {past}");
    assert!(past.is_implied(), "no trial-less patient exists to move a visit to");

    // The deduction is genuinely instance-based: on a document with a
    // trial-less patient the same constraint set does NOT imply the goal.
    let other_j =
        parse_term("hospital#1(patient#2(visit#6,clinicalTrial#9),patient#3(visit#7))").unwrap();
    let not_past = implies_on(&c3, &other_j, &goal);
    println!("{{c3}} ⊨_J' {goal}? {not_past}");
    assert!(not_past.is_not_implied());
}
