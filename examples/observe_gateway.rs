//! The gateway under observation: an `xuc-telemetry` bundle attached
//! end to end.
//!
//! Publishes a small hospital fleet, drains a mixed seeded stream
//! through the throughput path with telemetry attached, then reads back
//! everything the bundle collected — all through the public API:
//!
//! * the Prometheus-style metrics exposition (and its deterministic
//!   subset, the part that is byte-identical at any worker count),
//! * the per-stage latency attribution over the commit pipeline
//!   (apply → dirty-region → splice → verdict → certify),
//! * the bounded ring trace of one rejected commit, span by span.
//!
//! Attaching the bundle is observationally inert: the verdicts below are
//! the ones the uninstrumented gateway would have produced.
//!
//! Run with `cargo run --release --example observe_gateway`.

use std::sync::Arc;

use xml_update_constraints::prelude::*;
use xuc_service::workload::seeded_zipf_requests;

fn main() {
    // ---- Source: publish four hospital documents under one policy ----
    let gateway = Gateway::new(Signer::new(0x0B5E));
    let telemetry = Arc::new(Telemetry::new());
    assert!(gateway.attach_telemetry(Arc::clone(&telemetry)), "first attach wins");

    let policy = vec![
        parse_constraint("(/patient/visit, ↑)").unwrap(),
        parse_constraint("(/patient[/clinicalTrial], ↓)").unwrap(),
    ];
    let hospitals = ["mercy-west", "seattle-grace", "st-ambrose", "queen-of-angels"];
    let mut term = String::from("hospital#1(");
    for p in 0..6u64 {
        let base = 2 + 5 * p;
        term.push_str(&format!(
            "patient#{}(visit#{},visit#{},visit#{},note#{}),",
            base,
            base + 1,
            base + 2,
            base + 3,
            base + 4
        ));
    }
    term.pop();
    term.push(')');
    let tree = parse_term(&term).unwrap();
    let mut doc_refs = Vec::new();
    for name in hospitals {
        let id = DocId::new(name);
        gateway.publish(id, tree.clone(), policy.clone()).unwrap();
        doc_refs.push(id);
    }
    println!("published {} hospitals under {} constraints\n", hospitals.len(), policy.len());

    // ---- Brokers: a mixed Zipfian stream through the worker pool -----
    // Inserts, relabels and deletions against the protected documents:
    // some comply, some trip the ↑/↓ constraints and are rolled back.
    let refs: Vec<(DocId, &DataTree)> = doc_refs.iter().map(|d| (*d, &tree)).collect();
    let stream = seeded_zipf_requests(&refs, &["visit", "note"], 0x0B5E_CAFE, 160, 99);
    let verdicts = gateway.process_throughput(&stream, 2, &ThroughputOptions::default());
    let accepted = verdicts.iter().filter(|v| v.is_accepted()).count();
    println!(
        "drained {} requests at 2 workers: {} accepted, {} rejected\n",
        stream.len(),
        accepted,
        stream.len() - accepted
    );

    // ---- Metrics: the canonical exposition ---------------------------
    // `record_metrics` folds the gateway's verdict/shed/coalesce stats
    // and the engine + persistence counters into the attached registry.
    gateway.record_metrics();
    let snapshot = telemetry.registry().snapshot();
    println!("--- metrics exposition ---");
    print!("{}", snapshot.exposition());
    let deterministic = snapshot.exposition_deterministic();
    println!(
        "--- {} of those lines are classified Deterministic: byte-identical at 1, 2 or 8 workers ---\n",
        deterministic.lines().count()
    );

    // ---- Stages: where did admission time go? ------------------------
    println!("--- per-stage latency attribution ---");
    print!("{}", telemetry.stage_breakdown());
    println!();

    // ---- Trace: one rejected commit, span by span --------------------
    // Drain the ring so the next commit's spans stand alone, then submit
    // a tampering batch: deleting visit n3 violates (/patient/visit, ↑),
    // so the whole batch unwinds — and its trace shows exactly how far
    // it got: applied, spliced, judged... and never certified.
    telemetry.ring().drain();
    let tampering = Request {
        doc: doc_refs[0],
        updates: vec![Update::DeleteSubtree { node: NodeId::from_raw(3) }],
    };
    let verdict = gateway.submit(&tampering);
    println!("--- ring trace of one rejected commit ---");
    println!("submit(delete visit n3 of {}): {verdict}", hospitals[0]);
    let trace = telemetry.ring().drain();
    assert!(!trace.is_empty(), "the rejected commit left spans in the ring");
    let tag = trace[0].tag;
    for ev in &trace {
        assert_eq!(ev.tag, tag, "one commit, one tag");
        println!("  tag {:>3}  {:<16} {:>6} µs", ev.tag, ev.stage.name(), ev.micros);
    }
    assert!(matches!(verdict, Verdict::Rejected(RejectReason::Violation { .. })));
    assert!(
        trace.iter().all(|ev| ev.stage != Stage::Certify),
        "a rejected commit is never certified"
    );
    println!(
        "  (no {} span: the rejected batch was rolled back, not signed)",
        Stage::Certify.name()
    );
}
