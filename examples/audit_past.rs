//! Auditing the past: instance-based implication as forensic reasoning.
//!
//! A curator receives a product catalog that was governed by update
//! constraints but has no update log. Which integrity facts about the
//! *original* catalog can be deduced from the current one?
//!
//! Run with `cargo run --example audit_past`.

use xml_update_constraints::prelude::*;

fn main() {
    let current =
        parse_term("catalog(product#1(price#2,review#3),product#4(price#5),discontinued#6)")
            .unwrap();

    let policy = vec![
        // Products may never be inserted after publication…
        parse_constraint("(/product, ↓)").unwrap(),
        // …and priced products are immutable as a set.
        parse_constraint("(/product[/price], ↓)").unwrap(),
        parse_constraint("(/product[/price], ↑)").unwrap(),
        // Reviews may only accumulate.
        parse_constraint("(/product/review, ↑)").unwrap(),
    ];

    let audits = [
        ("(/product, ↓)", "could a product have been added?"),
        ("(/product[/price], ↓)", "could a priced product have been added?"),
        ("(/product[/review], ↓)", "could a reviewed product have been added?"),
        ("(/product/review, ↓)", "could a review have been added?"),
    ];

    for (src, question) in audits {
        let goal = parse_constraint(src).unwrap();
        let verdict = implies_on(&policy, &current, &goal);
        println!("{question:<55} {verdict}");
        if let Outcome::NotImplied(ce) = &verdict {
            println!("  e.g. the catalog could have looked like:");
            for line in ce.before.render().lines() {
                println!("    {line}");
            }
        }
    }
}
