//! Auditing the past: instance-based implication as forensic reasoning —
//! and, when a journal exists, offline verification of the *whole* update
//! history.
//!
//! Part 1: a curator receives a product catalog that was governed by
//! update constraints but has no update log. Which integrity facts about
//! the *original* catalog can be deduced from the current one?
//!
//! Part 2: the same catalog served by a **durable** gateway. Afterwards
//! an auditor — with the verification key and the gateway's durability
//! directory, but *no gateway* — replays the journal, re-derives every
//! intermediate state, and checks every accepted state's certificate,
//! each hash-linked to its predecessor: a tamper-evident chain over the
//! full history.
//!
//! Run with `cargo run --example audit_past`.

use xml_update_constraints::persist::{read_snapshots, read_wal, WalRecord};
use xml_update_constraints::prelude::*;
use xml_update_constraints::service::persist::wal_path;

fn main() {
    let current =
        parse_term("catalog(product#1(price#2,review#3),product#4(price#5),discontinued#6)")
            .unwrap();

    let policy = vec![
        // Products may never be inserted after publication…
        parse_constraint("(/product, ↓)").unwrap(),
        // …and priced products are immutable as a set.
        parse_constraint("(/product[/price], ↓)").unwrap(),
        parse_constraint("(/product[/price], ↑)").unwrap(),
        // Reviews may only accumulate.
        parse_constraint("(/product/review, ↑)").unwrap(),
    ];

    let audits = [
        ("(/product, ↓)", "could a product have been added?"),
        ("(/product[/price], ↓)", "could a priced product have been added?"),
        ("(/product[/review], ↓)", "could a reviewed product have been added?"),
        ("(/product/review, ↓)", "could a review have been added?"),
    ];

    for (src, question) in audits {
        let goal = parse_constraint(src).unwrap();
        let verdict = implies_on(&policy, &current, &goal);
        println!("{question:<55} {verdict}");
        if let Outcome::NotImplied(ce) = &verdict {
            println!("  e.g. the catalog could have looked like:");
            for line in ce.before.render().lines() {
                println!("    {line}");
            }
        }
    }

    // ---- Part 2: with a journal, the past is provable, not deduced ----

    let dir = std::env::temp_dir().join(format!("xuc-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = 0xA0D1;
    let doc = DocId::new("catalog");
    {
        let gw = Gateway::recover(Signer::new(key), &dir).expect("fresh durability dir");
        gw.publish(doc, current.clone(), policy.clone()).unwrap();
        let review = |product: u64| Request {
            doc,
            updates: vec![Update::InsertLeaf {
                parent: NodeId::from_raw(product),
                id: NodeId::fresh(),
                label: "review".into(),
            }],
        };
        assert!(gw.submit(&review(1)).is_accepted());
        assert!(gw.submit(&review(4)).is_accepted());
        // A forbidden product insertion is rejected — and, having changed
        // nothing, never enters the journal.
        let smuggle = Request {
            doc,
            updates: vec![Update::InsertLeaf {
                parent: current.root_id(),
                id: NodeId::fresh(),
                label: "product".into(),
            }],
        };
        assert!(!gw.submit(&smuggle).is_accepted());
        assert!(gw.submit(&review(4)).is_accepted());
    } // orderly shutdown: the journal is synced

    // The auditor's whole world: the files, and the verification key.
    let snaps = read_snapshots(&dir).unwrap();
    let scan = read_wal(&wal_path(&dir)).unwrap();
    println!();
    println!(
        "offline audit: {} snapshot(s), {} journal record(s), torn tail: {}",
        snaps.len(),
        scan.records.len(),
        scan.torn
    );

    let mut state: Option<DataTree> = None;
    let mut prev_digest = 0u64;
    for rec in &scan.records {
        match rec {
            WalRecord::Publish { doc, tree, suite } => {
                // The publish certificate is deterministic, so the
                // auditor recomputes it to anchor the chain.
                let mut ev = Evaluator::new(tree);
                let sets: Vec<_> = suite.iter().map(|c| ev.eval(&c.range)).collect();
                prev_digest = Signer::new(key).certify_precomputed(suite, &sets).digest();
                state = Some(tree.clone());
                println!("  published {doc:?} under {} constraints", suite.len());
            }
            WalRecord::Commit { commit, updates, cert, .. } => {
                let before = state.take().expect("publish precedes commits");
                let after = apply_all(&before, updates).expect("logged batches re-apply");
                // Every logged batch really respected the policy…
                assert!(policy.iter().all(|c| c.satisfied_by(&before, &after)));
                // …and its certificate signs exactly this state, chained
                // onto the previous one.
                cert.verify_chained(key, &after, prev_digest).expect("chain verifies");
                println!(
                    "  commit {commit}: {} update(s), certificate chains onto {prev_digest:#018x}",
                    updates.len()
                );
                prev_digest = cert.digest();
                state = Some(after);
            }
        }
    }
    println!("full history verified: every accepted state signed, every link intact");

    // Tamper-evidence: flip one byte in the last journal frame and the
    // scan refuses the forged suffix.
    let wal = wal_path(&dir);
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 10;
    bytes[last] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();
    let reread = read_wal(&wal).unwrap();
    assert!(reread.torn && reread.records.len() < scan.records.len());
    println!(
        "tampering with the journal tail: scan now yields {} record(s), torn tail detected",
        reread.records.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
