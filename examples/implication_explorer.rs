//! Cross-checks every decision procedure on random workloads and prints an
//! agreement matrix — a miniature of the test oracle, runnable by hand.
//!
//! Run with `cargo run --release --example implication_explorer`.

use xml_update_constraints::prelude::*;
use xuc_core::implication;
use xuc_workloads::queries::QueryGen;

fn main() {
    let labels = ["a", "b", "c"];
    let mut rng = xuc_bench_rng();
    let mut agree = 0usize;
    let mut total = 0usize;
    let mut refuted = 0usize;

    for round in 0..200 {
        let gen =
            if round % 2 == 0 { QueryGen::linear(&labels) } else { QueryGen::pred_star(&labels) };
        let set = gen.set(&mut rng, 1 + round % 3, 0.5);
        let goal = gen.constraint(&mut rng, 0.5);

        let outcome = implies(&set, &goal);
        total += 1;
        match &outcome {
            Outcome::Implied => {
                // The bounded search must not refute an exact answer.
                assert!(
                    implication::search::find_counterexample(&set, &goal, 1_500).is_none(),
                    "disagreement on C={set:?} c={goal}"
                );
                agree += 1;
            }
            Outcome::NotImplied(ce) => {
                assert!(ce.verify(&set, &goal));
                agree += 1;
                refuted += 1;
            }
            _ => {}
        }
    }
    println!("{total} random implication instances");
    println!(
        "{agree} decided exactly and cross-checked ({refuted} refuted with verified witnesses)"
    );
}

fn xuc_bench_rng() -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(42)
}
