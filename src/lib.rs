//! # Reasoning about XML update constraints
//!
//! A Rust reproduction of *Cautis, Abiteboul, Milo — "Reasoning about XML
//! update constraints"* (PODS 2007; JCSS 75(6), 2009): the update
//! constraint language `(q, σ)` over the XPath fragment `XP{/,[],//,*}`,
//! validity of instance pairs, and the general and instance-based
//! implication problems with the decision procedures of Sections 4–5.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`xtree`] | `xuc-xtree` | unordered data trees, node identity, updates |
//! | [`xpath`] | `xuc-xpath` | tree patterns: parse, evaluate, containment, intersection |
//! | [`automata`] | `xuc-automata` | NFA/DFA substrate for linear queries |
//! | [`core`] | `xuc-core` | constraints, validity, implication deciders |
//! | [`xic`] | `xuc-xic` | XML integrity constraints + chase (Section 3.3) |
//! | [`regular`] | `xuc-regular` | DTDs + unary regular keys, Theorem 4.2 reduction |
//! | [`sigstore`] | `xuc-sigstore` | simulated signature enforcement (Figure 1), hash-linked certificate chains |
//! | [`service`] | `xuc-service` | the Figure 1 gateway as a service: store, sessions, suite cache, worker pool, journal + crash recovery, degraded modes, admission queues |
//! | [`persist`] | `xuc-persist` | durability mechanisms: WAL framing, snapshots, binary codec, transient-IO retry |
//! | [`telemetry`] | `xuc-telemetry` | deterministic metrics registry, bounded trace ring, commit stage attribution |
//! | [`workloads`] | `xuc-workloads` | generators, 3CNF gadgets, paper figures |
//!
//! ## Quickstart
//!
//! ```
//! use xml_update_constraints::prelude::*;
//!
//! // Example 2.1: the hospital document evolves.
//! let before = parse_term("h(patient#1(visit#2,visit#3))").unwrap();
//! let mut after = before.clone();
//! after.delete_subtree(NodeId::from_raw(3)).unwrap();
//!
//! let c3 = parse_constraint("(/patient/visit, ↑)").unwrap();
//! assert!(!c3.satisfied_by(&before, &after)); // a visit was removed
//!
//! // Section 2.1: {c1, c2} ⊨ (/patient[/visit][/clinicalTrial], ↓).
//! let set = vec![
//!     parse_constraint("(/patient[/visit], ↓)").unwrap(),
//!     parse_constraint("(/patient[/clinicalTrial], ↓)").unwrap(),
//!     parse_constraint("(/patient[/clinicalTrial], ↑)").unwrap(),
//! ];
//! let goal = parse_constraint("(/patient[/visit][/clinicalTrial], ↓)").unwrap();
//! assert!(implies(&set, &goal).is_implied());
//! ```

pub use xuc_automata as automata;
pub use xuc_core as core;
pub use xuc_persist as persist;
pub use xuc_regular as regular;
pub use xuc_service as service;
pub use xuc_sigstore as sigstore;
pub use xuc_telemetry as telemetry;
pub use xuc_workloads as workloads;
pub use xuc_xic as xic;
pub use xuc_xpath as xpath;
pub use xuc_xtree as xtree;

/// The most common imports in one place.
pub mod prelude {
    pub use xuc_automata::{CompiledPatternSet, PatternSetCompiler};
    pub use xuc_core::implication::search::{
        find_counterexample, find_counterexample_sharded, find_counterexample_with_stats,
        SearchStats,
    };
    pub use xuc_core::{
        implies, implies_on, implies_on_with, implies_with, parse_constraint, Constraint,
        ConstraintKind, CounterExample, ImplicationConfig, InstanceCounterExample, Outcome,
        RelativeConstraint,
    };
    pub use xuc_service::{
        admit, admit_delta, admit_delta_in_place, plan_admission, render_arrival_log, render_log,
        AdmissionMode, Arrival, DegradedReason, DocId, DocumentStore, DurableOptions, Gateway,
        GatewayState, LoadOptions, LoadReport, RecoverError, RejectReason, Request, ResumeError,
        RetryPolicy, Session, ShedCause, SuiteCache, ThroughputOptions, Verdict, WriteFault,
    };
    pub use xuc_sigstore::{Certificate, Signer};
    pub use xuc_telemetry::{
        Determinism, MetricsRegistry, MetricsSnapshot, RecordInto, Stage, Telemetry, TraceEvent,
        TraceRing,
    };
    pub use xuc_xpath::{
        eval::eval, eval::eval_at, parse as parse_query, Evaluator, Pattern, SpliceJournal,
    };
    pub use xuc_xtree::{
        apply_all, apply_undoable, parse_term, undo, DataTree, DirtyRegion, EditScope, IdSwap,
        Label, NodeId, NodeRef, Update,
    };
}
